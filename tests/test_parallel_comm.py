"""Tests for the simulated communicator and its traffic accounting."""

import numpy as np
import pytest

from repro.parallel.comm import CommStats, SimulatedComm


class TestCommStats:
    def test_record_and_summary(self):
        s = CommStats()
        s.record(2, 100, "a")
        s.record(1, 50, "b")
        s.record(1, 25, "a")
        assert s.messages == 4
        assert s.bytes == 175
        assert s.tag_bytes("a") == 125
        assert s.tag_messages("a") == 3
        summary = s.summary()
        # per-tag entries carry message counts, not just bytes
        assert summary["by_tag"]["b"] == {"messages": 1, "bytes": 50}
        assert summary["by_tag"]["a"] == {"messages": 3, "bytes": 125}

    def test_reset(self):
        s = CommStats()
        s.record(1, 10, "x")
        s.reset()
        assert s.messages == 0 and s.bytes == 0 and s.tag_bytes("x") == 0
        assert s.tag_messages("x") == 0

    def test_unknown_tag_bytes_zero(self):
        assert CommStats().tag_bytes("nope") == 0
        assert CommStats().tag_messages("nope") == 0

    def test_size_histogram(self):
        s = CommStats()
        s.record(3, 7 + 64 + 65, "t",
                 pairs=[(0, 1, 7), (1, 0, 64), (0, 1, 65)])
        hist = s.tag_histogram("t")
        assert hist[3] == 1   # 7 bytes -> bucket 3 (sizes in [4, 8))
        assert hist[7] == 2   # 64 and 65 bytes -> bucket 7 ([64, 128))
        assert hist.sum() == 3
        summary = s.summary()
        assert summary["by_tag"]["t"]["size_histogram"] == {3: 1, 7: 2}

    def test_unknown_tag_histogram_zeros(self):
        assert CommStats().tag_histogram("nope").sum() == 0


class TestRankMatrix:
    def test_alltoallv_matrix(self):
        comm = SimulatedComm(3)
        send = [
            [np.zeros(i + j) if i != j else None for j in range(3)]
            for i in range(3)
        ]
        comm.alltoallv(send)
        m = comm.stats.byte_matrix
        assert m[0, 1] == 1 * 8 and m[0, 2] == 2 * 8
        assert m[1, 2] == 3 * 8 and m[2, 1] == 3 * 8
        assert np.all(np.diag(m) == 0)  # self-sends never charged
        assert comm.stats.msg_matrix.sum() == comm.stats.messages

    def test_exchange_matrix(self):
        comm = SimulatedComm(4)
        comm.exchange({(0, 3): np.zeros(2), (3, 0): np.zeros(5)})
        m = comm.stats.byte_matrix
        assert m[0, 3] == 16 and m[3, 0] == 40
        assert comm.stats.rank_send_bytes().tolist() == [16, 0, 0, 40]
        assert comm.stats.rank_recv_bytes().tolist() == [40, 0, 0, 16]

    def test_split_attributes_to_global_ranks(self):
        comm = SimulatedComm(4)
        cols = comm.split([0, 1, 0, 1])  # members (0, 2) and (1, 3)
        cols[0].alltoallv([[None, np.zeros(1)], [np.zeros(1), None]])
        m = comm.stats.byte_matrix
        # local ranks 0/1 of the sub-communicator are global ranks 0/2
        assert m[0, 2] == 8 and m[2, 0] == 8
        assert m.sum() == 16

    def test_matrix_disabled_without_n_ranks(self):
        s = CommStats()
        assert not s.matrix_enabled
        with pytest.raises(RuntimeError):
            s.rank_send_bytes()
        # recording per-pair traffic still feeds the histogram
        s.record(1, 8, "t", pairs=[(0, 1, 8)])
        assert s.tag_histogram("t").sum() == 1

    def test_reset_clears_matrix(self):
        comm = SimulatedComm(2)
        comm.exchange({(0, 1): np.zeros(1)})
        comm.stats.reset()
        assert comm.stats.byte_matrix.sum() == 0
        assert comm.stats.tag_histogram("exchange").sum() == 0

    def test_undersized_stats_rejected(self):
        with pytest.raises(ValueError):
            SimulatedComm(4, stats=CommStats(n_ranks=2))

    def test_summary_includes_rank_totals(self):
        comm = SimulatedComm(2)
        comm.exchange({(0, 1): np.zeros(3)})
        summary = comm.stats.summary()
        assert summary["rank_send_bytes"] == [24, 0]
        assert summary["rank_recv_bytes"] == [0, 24]


class TestAlltoallv:
    def test_transpose_semantics(self):
        comm = SimulatedComm(3)
        send = [
            [np.full(1, 10 * i + j) for j in range(3)] for i in range(3)
        ]
        recv = comm.alltoallv(send)
        for i in range(3):
            for j in range(3):
                assert recv[j][i][0] == 10 * i + j

    def test_self_messages_not_charged(self):
        comm = SimulatedComm(2)
        send = [[np.zeros(10), None], [None, np.zeros(10)]]
        comm.alltoallv(send)
        assert comm.stats.bytes == 0
        assert comm.stats.messages == 0

    def test_bytes_counted(self):
        comm = SimulatedComm(2)
        send = [[None, np.zeros(4)], [np.zeros(2), None]]
        comm.alltoallv(send)
        assert comm.stats.bytes == (4 + 2) * 8
        assert comm.stats.messages == 2

    def test_empty_arrays_free(self):
        comm = SimulatedComm(2)
        comm.alltoallv([[None, np.empty(0)], [np.empty(0), None]])
        assert comm.stats.messages == 0

    def test_wrong_row_count_rejected(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[None, None]])

    def test_wrong_row_length_rejected(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[None], [None, None]])


class TestExchange:
    def test_delivery_and_accounting(self):
        comm = SimulatedComm(4)
        sends = {(0, 1): np.zeros(3), (2, 3): np.zeros(5), (1, 1): np.zeros(7)}
        out = comm.exchange(sends)
        assert set(out) == set(sends)
        assert comm.stats.messages == 2  # self-send not charged
        assert comm.stats.bytes == (3 + 5) * 8

    def test_bad_rank_rejected(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError):
            comm.exchange({(0, 5): np.zeros(1)})


class TestCollectives:
    def test_allreduce_sum(self):
        comm = SimulatedComm(4)
        assert comm.allreduce([1, 2, 3, 4]) == 10
        assert comm.stats.messages == 2 * 3

    def test_allreduce_custom_op(self):
        comm = SimulatedComm(3)
        assert comm.allreduce([5, 1, 9], op=max) == 9

    def test_allreduce_wrong_count(self):
        with pytest.raises(ValueError):
            SimulatedComm(3).allreduce([1, 2])

    def test_allgather(self):
        comm = SimulatedComm(3)
        vals = comm.allgather([np.array([i]) for i in range(3)])
        assert [int(v[0]) for v in vals] == [0, 1, 2]
        assert comm.stats.messages == 3 * 2

    def test_barrier_counts_messages_not_bytes(self):
        comm = SimulatedComm(8)
        comm.barrier()
        assert comm.stats.bytes == 0
        assert comm.stats.messages == 14


class TestSplit:
    def test_groups_and_shared_stats(self):
        comm = SimulatedComm(4)
        rows = comm.split([0, 0, 1, 1])
        assert [c.size for c in rows] == [2, 2]
        assert rows[0].members == (0, 1)
        assert rows[1].members == (2, 3)
        rows[0].alltoallv([[None, np.zeros(1)], [np.zeros(1), None]])
        assert comm.stats.bytes == 16  # parent sees child traffic

    def test_interleaved_colors(self):
        comm = SimulatedComm(4)
        cols = comm.split([0, 1, 0, 1])
        assert cols[0].members == (0, 2)
        assert cols[1].members == (1, 3)

    def test_wrong_color_count(self):
        with pytest.raises(ValueError):
            SimulatedComm(4).split([0, 1])


class TestConstruction:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)

    def test_members_mismatch(self):
        with pytest.raises(ValueError):
            SimulatedComm(2, members=(0, 1, 2))
