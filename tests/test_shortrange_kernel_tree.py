"""Tests for the PP force kernel and the RCB tree."""

import numpy as np
import pytest

from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.rcb_tree import RCBTree


@pytest.fixture()
def kernel(grid_force_fit):
    return ShortRangeKernel(grid_force_fit, spacing=1.0, eps_cells=0.0)


class TestKernelFunction:
    def test_matches_fit_short_range(self, kernel, grid_force_fit):
        s = np.array([0.5, 1.0, 4.0])
        assert np.allclose(kernel.f_sr_cells(s), grid_force_fit.short_range(s))

    def test_zero_outside_cutoff(self, kernel):
        assert np.all(kernel.f_sr_cells(np.array([9.0, 25.0])) == 0.0)

    def test_zero_at_zero_separation(self, kernel):
        assert float(kernel.f_sr_cells(np.array([0.0]))[0]) == 0.0

    def test_softening_caps_force(self, grid_force_fit):
        soft = ShortRangeKernel(grid_force_fit, 1.0, eps_cells=0.04)
        hard = ShortRangeKernel(grid_force_fit, 1.0, eps_cells=0.0)
        s = np.array([1e-4])
        assert float(soft.f_sr_cells(s)[0]) < float(hard.f_sr_cells(s)[0])

    def test_physical_units_scaling(self, grid_force_fit):
        """f_phys(s) = f_cells(s/D^2)/D^3."""
        k1 = ShortRangeKernel(grid_force_fit, spacing=1.0)
        k2 = ShortRangeKernel(grid_force_fit, spacing=2.0)
        s_phys = 4.0  # = 1.0 cells^2 at spacing 2
        assert float(k2.f_sr(np.array([s_phys]))[0]) == pytest.approx(
            float(k1.f_sr_cells(np.array([1.0]))[0]) / 8.0
        )

    def test_float32_mode_close_to_float64(self, grid_force_fit):
        """Mixed precision: single-precision kernel agrees to ~1e-5."""
        k64 = ShortRangeKernel(grid_force_fit, 1.0)
        k32 = ShortRangeKernel(grid_force_fit, 1.0, dtype=np.float32)
        s = np.linspace(0.1, 8.0, 100)
        a, b = k64.f_sr_cells(s), k32.f_sr_cells(s)
        assert np.allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_rcut_physical(self, grid_force_fit):
        k = ShortRangeKernel(grid_force_fit, spacing=2.5)
        assert k.rcut == pytest.approx(3.0 * 2.5)

    @pytest.mark.parametrize("kwargs", [dict(spacing=0.0), dict(eps_cells=-1.0)])
    def test_validation(self, grid_force_fit, kwargs):
        with pytest.raises(ValueError):
            ShortRangeKernel(grid_force_fit, **{"spacing": 1.0, **kwargs})


class TestAccumulate:
    def test_two_body_antisymmetry(self, kernel):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        m = np.ones(2)
        acc = kernel.accumulate(pos, pos, m)
        assert np.allclose(acc[0], -acc[1])
        assert acc[0, 0] > 0  # attraction toward the other particle

    def test_matches_brute_force(self, kernel, rng):
        pos = rng.uniform(0, 4.0, (30, 3))
        m = rng.uniform(0.5, 2.0, 30)
        fast = kernel.accumulate(pos, pos, m)
        slow = np.zeros_like(fast)
        for i in range(30):
            for j in range(30):
                if i == j:
                    continue
                d = pos[i] - pos[j]
                s = float(d @ d)
                slow[i] -= m[j] * float(kernel.f_sr(np.array([s]))[0]) * d
        assert np.allclose(fast, slow, atol=1e-10)

    def test_chunking_invariance(self, kernel, rng):
        pos = rng.uniform(0, 4.0, (100, 3))
        m = np.ones(100)
        a = kernel.accumulate(pos, pos, m, chunk=7)
        b = kernel.accumulate(pos, pos, m, chunk=1000)
        assert np.allclose(a, b, atol=1e-12)

    def test_mass_linearity(self, kernel, rng):
        tgt = rng.uniform(0, 3.0, (10, 3))
        src = rng.uniform(0, 3.0, (20, 3))
        m = rng.uniform(0.5, 1.5, 20)
        assert np.allclose(
            kernel.accumulate(tgt, src, 2 * m),
            2 * kernel.accumulate(tgt, src, m),
        )

    def test_interaction_counter(self, kernel, rng):
        kernel.reset_counters()
        tgt = rng.uniform(0, 3.0, (10, 3))
        src = rng.uniform(0, 3.0, (20, 3))
        kernel.accumulate(tgt, src, np.ones(20))
        assert kernel.interaction_count == 200
        assert kernel.flops() == pytest.approx(21.0 * 200)

    def test_empty_inputs(self, kernel):
        out = kernel.accumulate(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros(0))
        assert out.shape == (0, 3)

    def test_shape_validation(self, kernel):
        with pytest.raises(ValueError):
            kernel.accumulate(np.zeros((3, 2)), np.zeros((3, 3)), np.ones(3))
        with pytest.raises(ValueError):
            kernel.accumulate(np.zeros((3, 3)), np.zeros((3, 3)), np.ones(2))


class TestRCBTree:
    def test_all_particles_in_leaves(self, rng):
        pos = rng.uniform(0, 1, (500, 3))
        tree = RCBTree(pos, leaf_size=32)
        total = sum(tree.node(l).count for l in tree.leaves())
        assert total == 500

    def test_leaf_size_respected(self, rng):
        pos = rng.uniform(0, 1, (500, 3))
        tree = RCBTree(pos, leaf_size=32)
        assert all(tree.node(l).count <= 32 for l in tree.leaves())

    def test_permutation_is_bijection(self, rng):
        pos = rng.uniform(0, 1, (200, 3))
        tree = RCBTree(pos, leaf_size=16)
        assert np.array_equal(np.sort(tree.perm), np.arange(200))

    def test_positions_reordered_consistently(self, rng):
        pos = rng.uniform(0, 1, (200, 3))
        tree = RCBTree(pos, leaf_size=16)
        assert np.allclose(tree.positions, pos[tree.perm])

    def test_masses_travel_with_positions(self, rng):
        pos = rng.uniform(0, 1, (100, 3))
        m = rng.uniform(1, 2, 100)
        tree = RCBTree(pos, m, leaf_size=8)
        assert np.allclose(tree.masses, m[tree.perm])

    def test_nodes_contiguous_and_nested(self, rng):
        pos = rng.uniform(0, 1, (300, 3))
        tree = RCBTree(pos, leaf_size=20)
        for i in range(tree.n_nodes):
            node = tree.node(i)
            if not node.is_leaf:
                l, r = tree.node(node.left), tree.node(node.right)
                assert l.start == node.start
                assert r.start == l.start + l.count
                assert l.count + r.count == node.count

    def test_bounding_boxes_contain_particles(self, rng):
        pos = rng.uniform(0, 1, (300, 3))
        tree = RCBTree(pos, leaf_size=20)
        for lidx in tree.leaves():
            node = tree.node(lidx)
            seg = tree.positions[node.start : node.start + node.count]
            assert np.all(seg >= node.lo - 1e-12)
            assert np.all(seg <= node.hi + 1e-12)

    def test_split_perpendicular_to_longest_side(self):
        """Elongated cloud splits along its long axis first."""
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 1, (100, 3))
        pos[:, 0] *= 10  # long in x
        tree = RCBTree(pos, leaf_size=32)
        root = tree.node(0)
        l, r = tree.node(root.left), tree.node(root.right)
        assert l.hi[0] <= r.lo[0] + 1e-9  # separated in x

    def test_center_of_mass_split(self):
        """The dividing line is the center of mass, not the midpoint."""
        pos = np.zeros((10, 3))
        pos[:, 0] = [0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 10.0]
        tree = RCBTree(pos, leaf_size=4)
        root = tree.node(0)
        left = tree.node(root.left)
        # com ~ 1.36: nine points below, one above
        assert left.count == 9

    def test_duplicate_positions_handled(self):
        pos = np.ones((50, 3))
        tree = RCBTree(pos, leaf_size=8)
        total = sum(tree.node(l).count for l in tree.leaves())
        assert total == 50

    def test_depth_logarithmic(self, rng):
        pos = rng.uniform(0, 1, (1024, 3))
        tree = RCBTree(pos, leaf_size=16)
        # perfect bisection would need log2(1024/16) = 6 levels
        assert 6 <= tree.depth() <= 14

    def test_interaction_list_complete(self, rng):
        """The shared leaf list contains every particle within rcut of any
        leaf member (it may legitimately contain more)."""
        pos = rng.uniform(0, 4.0, (300, 3))
        tree = RCBTree(pos, leaf_size=16)
        rcut = 0.8
        for lidx in tree.leaves()[:5]:
            node = tree.node(lidx)
            ilist = set(tree.interaction_list(lidx, rcut).tolist())
            seg = tree.positions[node.start : node.start + node.count]
            d2 = ((tree.positions[:, None, :] - seg[None, :, :]) ** 2).sum(-1)
            required = set(np.flatnonzero((d2 < rcut**2).any(axis=1)).tolist())
            assert required <= ilist

    def test_interaction_list_prunes_far_nodes(self, rng):
        """Two distant clusters don't appear on each other's lists."""
        a = rng.uniform(0, 1, (100, 3))
        b = rng.uniform(9, 10, (100, 3))
        tree = RCBTree(np.vstack([a, b]), leaf_size=16)
        for lidx in tree.leaves():
            node = tree.node(lidx)
            ilist = tree.interaction_list(lidx, 0.5)
            pts = tree.positions[ilist]
            span = pts.max(axis=0) - pts.min(axis=0)
            assert np.all(span < 3.0)  # never spans both clusters

    def test_interaction_list_on_internal_node_rejected(self, rng):
        tree = RCBTree(rng.uniform(0, 1, (100, 3)), leaf_size=8)
        root = tree.node(0)
        assert not root.is_leaf
        with pytest.raises(ValueError):
            tree.interaction_list(0, 0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RCBTree(rng.uniform(0, 1, (10, 2)))
        with pytest.raises(ValueError):
            RCBTree(rng.uniform(0, 1, (10, 3)), leaf_size=0)
        with pytest.raises(ValueError):
            RCBTree(rng.uniform(0, 1, (10, 3)), masses=np.ones(5))

    def test_empty_tree(self):
        tree = RCBTree(np.zeros((0, 3)))
        assert tree.n_nodes == 0
        assert tree.leaves() == []
