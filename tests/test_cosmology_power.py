"""Tests for transfer functions and the linear power spectrum."""

import numpy as np
import pytest

from repro.cosmology.background import WMAP7
from repro.cosmology.power_spectrum import LinearPower, TransferFunction


class TestTransferFunction:
    @pytest.mark.parametrize("kind", TransferFunction.KINDS)
    def test_normalized_at_low_k(self, kind):
        tf = TransferFunction(WMAP7, kind)
        assert float(tf(np.array([1e-6]))[0]) == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("kind", TransferFunction.KINDS)
    def test_monotone_envelope(self, kind):
        # T(k) decays strongly toward small scales (BAO wiggles are small
        # modulations, so compare widely separated k)
        tf = TransferFunction(WMAP7, kind)
        k = np.array([1e-3, 1e-1, 1e1])
        t = tf(k)
        assert t[0] > t[1] > t[2] > 0

    def test_small_scale_suppression_order_of_magnitude(self):
        tf = TransferFunction(WMAP7)
        # at k = 1 h/Mpc the transfer function is down by ~1e-2..1e-3
        t1 = float(tf(np.array([1.0]))[0])
        assert 1e-4 < t1 < 1e-1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction(WMAP7, "camb")

    def test_negative_k_rejected(self):
        tf = TransferFunction(WMAP7)
        with pytest.raises(ValueError):
            tf(np.array([-0.1]))

    def test_full_fit_has_bao_wiggles(self):
        """The full EH fit oscillates around the no-wiggle form."""
        full = TransferFunction(WMAP7, "eisenstein_hu")
        nw = TransferFunction(WMAP7, "eisenstein_hu_nw")
        k = np.linspace(0.05, 0.4, 400)
        ratio = full(k) / nw(k)
        # wiggles: the ratio crosses unity several times
        crossings = np.count_nonzero(np.diff(np.sign(ratio - 1.0)))
        assert crossings >= 3

    def test_wiggle_amplitude_is_percent_level(self):
        full = TransferFunction(WMAP7, "eisenstein_hu")
        nw = TransferFunction(WMAP7, "eisenstein_hu_nw")
        k = np.linspace(0.05, 0.4, 400)
        ratio = full(k) / nw(k)
        assert 0.01 < np.max(np.abs(ratio - 1.0)) < 0.25

    def test_bbks_close_to_eh_nowiggle(self):
        bbks = TransferFunction(WMAP7, "bbks")
        nw = TransferFunction(WMAP7, "eisenstein_hu_nw")
        k = np.logspace(-3, 0, 50)
        ratio = bbks(k) / nw(k)
        assert np.all(ratio > 0.5)
        assert np.all(ratio < 2.0)

    def test_k_equals_zero_returns_one(self):
        tf = TransferFunction(WMAP7)
        assert float(tf(np.array([0.0]))[0]) == 1.0


class TestLinearPower:
    def test_sigma8_normalization(self, linear_power):
        assert linear_power.sigma_r(8.0) == pytest.approx(
            WMAP7.sigma8, rel=1e-3
        )

    def test_power_positive(self, linear_power):
        k = np.logspace(-4, 1.5, 60)
        assert np.all(linear_power(k) > 0)

    def test_power_zero_at_k_zero(self, linear_power):
        assert float(linear_power(np.array([0.0]))[0]) == 0.0

    def test_large_scale_slope_is_ns(self, linear_power):
        # P ~ k^ns on ultra-large scales
        k1, k2 = 1e-4, 2e-4
        slope = np.log(linear_power(k2) / linear_power(k1)) / np.log(k2 / k1)
        assert slope == pytest.approx(WMAP7.n_s, abs=0.02)

    def test_growth_scaling_with_a(self, linear_power):
        a = 0.5
        d = WMAP7.growth_factor(a)
        k = np.array([0.1])
        assert float(linear_power(k, a)[0]) == pytest.approx(
            float(linear_power(k)[0]) * d * d, rel=1e-7
        )

    def test_peak_location(self, linear_power):
        # matter power peaks near k_eq ~ 0.01-0.02 h/Mpc
        k = np.logspace(-3, 0, 300)
        kpeak = k[np.argmax(linear_power(k))]
        assert 0.005 < kpeak < 0.05

    def test_sigma_decreases_with_radius(self, linear_power):
        assert linear_power.sigma_r(4.0) > linear_power.sigma_r(16.0)

    def test_sigma_r_rejects_nonpositive(self, linear_power):
        with pytest.raises(ValueError):
            linear_power.sigma_r(0.0)

    def test_sigma_m_cluster_scale(self, linear_power):
        # 1e15 Msun/h clusters are rare: sigma(M) < delta_c there
        assert linear_power.sigma_m(1e15) < 1.686

    def test_dimensionless_nonlinear_scale(self, linear_power):
        # Delta^2 crosses unity somewhere around k ~ 0.2-0.5 h/Mpc at z=0
        k = np.logspace(-2, 1, 200)
        d2 = linear_power.dimensionless(k)
        k_nl = k[np.argmin(np.abs(d2 - 1.0))]
        assert 0.05 < k_nl < 1.5

    def test_table_shapes(self, linear_power):
        k, p = linear_power.table(n=64)
        assert k.shape == p.shape == (64,)
        assert np.all(np.diff(k) > 0)

    def test_bbks_normalization_also_holds(self):
        p = LinearPower(WMAP7, transfer="bbks")
        assert p.sigma_r(8.0) == pytest.approx(WMAP7.sigma8, rel=1e-3)
