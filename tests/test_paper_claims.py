"""The paper's quantitative claims, as a test ledger.

Every number asserted here appears verbatim in the paper (abstract,
introduction, or section text); the test shows where the reproduction's
code regenerates or is consistent with it.  This file doubles as a map
from paper statements to library functionality.
"""

import numpy as np
import pytest

from repro.constants import particle_mass
from repro.cosmology import WMAP7, LinearPower
from repro.machine import (
    BGQNode,
    BGQSystem,
    DistributedFFTModel,
    ForceKernelModel,
    FullCodeModel,
)
from repro.machine.paper_data import (
    KERNEL_FLOPS,
    KERNEL_INSTRUCTIONS,
    TABLE2,
)


class TestAbstractClaims:
    def test_13_94_pflops_at_69_2_percent(self):
        """'currently 13.94 PFlops at 69.2% of peak'."""
        seq = BGQSystem.racks(96)
        assert 13.94e15 / seq.peak_flops == pytest.approx(0.692, abs=0.002)
        model = FullCodeModel.calibrated().headline()
        assert model["model_pflops"] == pytest.approx(13.94, rel=0.02)

    def test_1_572_864_cores_with_equal_ranks(self):
        """'on 1,572,864 cores with an equal number of MPI ranks'."""
        assert BGQSystem.racks(96).cores == 1_572_864
        assert TABLE2[-1].cores == 1_572_864

    def test_concurrency_6_3_million(self):
        """'a concurrency of 6.3 million' = cores x 4 hardware threads."""
        node = BGQNode()
        concurrency = BGQSystem.racks(96).cores * node.hw_threads_per_core
        assert concurrency == 6_291_456
        assert concurrency / 1e6 == pytest.approx(6.3, abs=0.05)

    def test_3_6_trillion_particles(self):
        """'a benchmark run with more than 3.6 trillion particles'
        = 15360^3."""
        assert TABLE2[-1].np_per_dim == 15360
        assert 15360**3 == 3_623_878_656_000
        assert 15360**3 > 3.6e12

    def test_90_percent_parallel_efficiency(self):
        """'90% parallel efficiency': cores x time/substep grows by no
        more than ~1/0.9 across the weak-scaling range."""
        worst = max(r.cores_time_substep for r in TABLE2)
        best = min(r.cores_time_substep for r in TABLE2)
        assert best / worst > 0.75  # paper's own data: 7.86/9.93 = 0.79


class TestIntroductionClaims:
    def test_lsst_vs_deep_lens_survey_area(self):
        """Fig. 1: 'LSST ... will cover 50,000 times the area of this
        image' — one full-moon patch (~0.2 deg^2) vs 20,000 deg^2
        within an order of magnitude; asserted as the paper states it."""
        lsst_area_deg2 = 20000.0
        moon_patch_deg2 = lsst_area_deg2 / 50000.0
        assert 0.1 < moon_patch_deg2 < 1.0  # ~the full moon's ~0.4 deg^2

    def test_dynamic_range_one_part_in_1e6(self):
        """'a dynamic range ... of a part in 1e6 (~Gpc/kpc)'."""
        assert 1.0e3 / 1.0e-3 == pytest.approx(1e6)  # Gpc/kpc in Mpc
        # the science run realizes it: 9.14 Gpc box, 0.007 Mpc resolution
        assert 9140.0 / 0.007 == pytest.approx(1.31e6, rel=0.01)

    def test_mass_resolution_ratio_1e5(self):
        """'the ratio of the mass of the smallest resolved halo to that
        of the most massive ... is ~1e5': 1e11 Msun galaxies to ~1e15-16
        Msun clusters."""
        smallest, largest = 1e11, 1e16
        assert largest / smallest == pytest.approx(1e5)

    def test_tracer_mass_1e8_for_1e11_halos(self):
        """'tracer particle mass should be ~1e8 Msun' to resolve 1e11
        Msun halos — i.e. ~1000 particles per smallest halo."""
        assert 1e11 / 1e8 == pytest.approx(1000.0)

    def test_science_run_particle_mass(self):
        """Section V: 10240^3 particles in (9.14 Gpc)^3 gives
        'm_p ~= 1.9e10 Msun'.

        The quoted box is in physical Gpc; converting to the library's
        Mpc/h convention (9140 Mpc x h = 6489 Mpc/h) reproduces the
        stated mass in Msun/h to ~2%."""
        box_mpc_h = 9140.0 * WMAP7.h
        mp = particle_mass(WMAP7.omega_m, box_mpc_h, 10240**3)
        assert mp == pytest.approx(1.9e10, rel=0.05)


class TestSectionIIClaims:
    def test_force_matching_at_3_cells(self):
        """'matching the short and longer-range forces at a spacing of 3
        grid cells'."""
        from repro.shortrange.grid_force import default_grid_force_fit

        fit = default_grid_force_fit()
        assert fit.rcut_cells == 3.0
        # beyond the cut the short-range force is identically zero
        assert fit.short_range(np.array([9.1]))[0] == 0.0

    def test_overloading_memory_overhead(self):
        """'typical memory overhead cost for a large run is ~10%' —
        rcut-sized shells on Table II row-1 geometry give 10-20%."""
        from repro.parallel.decomposition import DomainDecomposition

        row = TABLE2[0]
        decomp = DomainDecomposition(row.box_mpc, row.geometry)
        depth = 3.0 * row.box_mpc / row.np_per_dim
        overhead = decomp.overload_volume_factor(depth) - 1.0
        assert 0.05 < overhead < 0.20

    def test_subcycle_range(self):
        """'the number of sub-cycles can vary ... from nc = 5-10' —
        the config accepts and defaults inside that band."""
        from repro.config import SimulationConfig

        cfg = SimulationConfig(box_size=64.0, n_per_dim=16)
        assert 1 <= cfg.n_subcycles <= 10


class TestSectionIIIClaims:
    def test_kernel_flop_arithmetic(self):
        """'26 instructions ... 208 Flops if they were all FMAs ... 16
        of them are FMAs yielding a total Flop count of 168 (= 40 + 128)
        implying a theoretical maximum value of 168/208 = 0.81'."""
        assert KERNEL_INSTRUCTIONS * 8 == 208
        assert 16 * 8 + 10 * 4 == KERNEL_FLOPS == 168
        assert 40 + 128 == 168
        assert ForceKernelModel().arithmetic_ceiling == pytest.approx(
            168 / 208
        )

    def test_node_peak_arithmetic(self):
        """'peak performance per core of 12.8 GFlops, or 204.8 GFlops
        for the BQC chip'."""
        node = BGQNode()
        assert node.flops_per_core_peak == pytest.approx(12.8e9)
        assert node.flops_per_node_peak == pytest.approx(204.8e9)

    def test_time_split_sums_to_one(self):
        """'80% of the time in the ... force kernel, 10% in the tree
        walk, and 5% in the FFT, all other operations ... another 5%'."""
        from repro.machine.paper_data import FULLCODE_TIME_SPLIT

        assert sum(FULLCODE_TIME_SPLIT.values()) == pytest.approx(1.0)


class TestSectionIVClaims:
    def test_largest_fft_under_15_seconds(self):
        """'The largest FFT we ran ... 10240^3 and a run-time of less
        than 15 s' — the calibrated model concurs."""
        model = DistributedFFTModel.calibrated()
        assert model.time(10240, 131072) < 15.0

    def test_push_time_supports_day_to_week_runs(self):
        """'push-times of 0.06 ns/substep/particle ... allow runs of 100
        billion to trillions of particles in a day to a week'."""
        t = 5.96e-11  # the Table II bottom row
        # a 500-step, 5-subcycle trillion-particle campaign:
        wall_days = t * 1e12 * 500 * 5 / 86400
        assert 1.0 < wall_days < 7.0

    def test_strong_scaling_memory_band(self):
        """Section IV.C: per-node memory utilization spans ~57% (typical
        production) down to ~7% across the Table III ladder."""
        from repro.machine.paper_data import TABLE3

        fractions = [r.memory_fraction_percent for r in TABLE3]
        assert fractions[0] == pytest.approx(62.4, abs=0.1)
        assert fractions[-1] == pytest.approx(4.5, abs=0.1)


class TestSectionVClaims:
    def test_science_box_resolves_lrg_halos(self):
        """'m_p ~= 1.9e10 Msun, allowing us to resolve halos that host
        LRGs' (~1e13 Msun: several hundred particles)."""
        mp = 1.9e10
        lrg_halo = 1e13
        assert 100 < lrg_halo / mp < 1000

    def test_fig11_cluster_mass_scale(self):
        """Fig. 11 shows a ~1e15 Msun halo — rare: its Sheth-Tormen
        abundance is far below the LRG-host scale's."""
        pk = LinearPower(WMAP7)
        from repro.analysis.mass_function import sheth_tormen

        rare = sheth_tormen(pk, np.array([1e15]))[0]
        common = sheth_tormen(pk, np.array([1e13]))[0]
        assert rare < 0.01 * common

    def test_test_run_three_times_bigger(self):
        """'the test run is more than three times bigger than the
        largest high-resolution simulation available today'
        (10240^3 vs Millennium-XXL's 303 billion)."""
        assert 10240**3 / 303e9 > 3.0
