"""Integration tests: the full code reproduces known physics.

These are the reproduction's core scientific checks:

* linear growth of a single Zel'dovich mode through the PM pipeline;
* growth of the low-k power spectrum of a realistic realization;
* PM + short-range force reproduces the exact Newtonian pair force
  inside the handover radius (force-matching);
* P3M and PPTreePM full runs agree on the nonlinear power spectrum
  (the paper's Section II accuracy claim).
"""

import numpy as np
import pytest

from repro.analysis.power import matter_power_spectrum
from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.core.simulation import HACCSimulation
from repro.core.timestepper import SubcycledStepper
from repro.cosmology import WMAP7
from repro.grid.poisson import SpectralPoissonSolver
from repro.shortrange.grid_force import pair_force_normalization


@pytest.mark.slow
class TestLinearGrowth:
    def test_single_mode_zeldovich(self):
        """A single plane-wave perturbation grows by D(a1)/D(a0) under
        the PM dynamics (2% tolerance: discreteness + stepping)."""
        box, n = 100.0, 32
        a0, a1 = 1 / 26, 0.5
        k = 2 * np.pi / box
        amp = 0.5

        grid = np.arange(n) * (box / n)
        qx, qy, qz = np.meshgrid(grid, grid, grid, indexing="ij")
        q = np.stack([qx.ravel(), qy.ravel(), qz.ravel()], axis=1)
        d0 = WMAP7.growth_factor(a0)
        f0 = WMAP7.growth_rate(a0)
        e0 = float(WMAP7.efunc(a0))
        disp = np.zeros_like(q)
        disp[:, 0] = amp * np.sin(k * q[:, 0])

        parts = Particles(
            np.mod(q + d0 * disp, box),
            (a0**2 * e0 * f0 * d0) * disp,
            np.ones(len(q)),
            np.arange(len(q)),
            box,
        )
        solver = SpectralPoissonSolver(n, box, sigma=0.0, ns=0)
        pref = 1.5 * WMAP7.omega_m
        stepper = SubcycledStepper(
            WMAP7, lambda p: pref * solver.accelerations(p), None, 1
        )
        edges = np.linspace(a0, a1, 33)
        for b0, b1 in zip(edges[:-1], edges[1:]):
            stepper.step(parts, b0, b1)

        d = parts.positions[:, 0] - q[:, 0]
        d -= box * np.round(d / box)
        measured = 2 * np.mean(d * np.sin(k * q[:, 0]))
        expected = WMAP7.growth_factor(a1) * amp
        assert measured == pytest.approx(expected, rel=0.02)

    def test_realization_power_growth(self, linear_power):
        """PM-only run: low-k power grows by the linear factor."""
        cfg = SimulationConfig(
            box_size=200.0,
            n_per_dim=32,
            z_initial=25.0,
            z_final=1.0,
            n_steps=16,
            backend="pm",
            seed=7,
        )
        sim = HACCSimulation(cfg)
        p0 = matter_power_spectrum(
            sim.particles.positions, 200.0, 32, subtract_shot_noise=False
        )
        sim.run()
        p1 = matter_power_spectrum(
            sim.particles.positions, 200.0, 32, subtract_shot_noise=False
        )
        growth2 = (
            WMAP7.growth_factor(sim.a) / WMAP7.growth_factor(cfg.a_initial)
        ) ** 2
        ratio = p1.power[:4] / p0.power[:4] / growth2
        # same realization: cosmic variance cancels.  The fundamental
        # mode grows at the linear rate to better than 10%; higher bins
        # are progressively suppressed by the spectral filter — exactly
        # the deficit the short-range force exists to repair (PM-only
        # run here).
        assert 0.88 < ratio[0] < 1.05
        assert np.all(np.diff(ratio) < 0)
        assert ratio[3] > 0.5


@pytest.mark.slow
class TestForceMatching:
    def test_pm_plus_sr_equals_newton(self):
        """Total (PM + short-range) pair force matches 1/r^2 from well
        inside the handover out to several cells — Section II's central
        construction."""
        n, box = 32, 32.0  # spacing 1
        cfg = SimulationConfig(
            box_size=box,
            n_per_dim=4,  # placeholder; particles supplied manually
            grid_size=n,
            backend="direct",
            n_steps=1,
        )
        rng = np.random.default_rng(3)
        errors = []
        for _ in range(12):
            center = rng.uniform(8.0, 24.0, 3)
            direction = rng.standard_normal(3)
            direction /= np.linalg.norm(direction)
            r = rng.uniform(0.7, 6.0)
            pos = np.stack([center, center + r * direction])
            parts = Particles(
                pos.copy(), np.zeros((2, 3)), np.ones(2), np.arange(2), box
            )
            sim = HACCSimulation(cfg, particles=parts)
            total = sim._long_range(parts.positions) + sim._short_range(
                parts.positions
            )
            # expected Newtonian: prefactor * norm / r^2 along direction
            newton = (
                sim.prefactor
                * pair_force_normalization(box, 2)
                / r**2
            )
            measured = -float(total[1] @ direction)
            errors.append(abs(measured - newton) / newton)
        errors = np.array(errors)
        assert np.median(errors) < 0.02
        assert errors.max() < 0.15

    def test_sr_correction_large_below_cell_scale(self):
        """At sub-cell separation the short-range term dominates the
        (filtered, hence suppressed) PM term."""
        n, box = 32, 32.0
        cfg = SimulationConfig(
            box_size=box, n_per_dim=4, grid_size=n, backend="direct", n_steps=1
        )
        pos = np.array([[16.0, 16.0, 16.0], [16.6, 16.0, 16.0]])
        parts = Particles(
            pos.copy(), np.zeros((2, 3)), np.ones(2), np.arange(2), box
        )
        sim = HACCSimulation(cfg, particles=parts)
        pm = sim._long_range(pos)
        sr = sim._short_range(pos)
        assert abs(sr[0, 0]) > abs(pm[0, 0])


@pytest.mark.slow
class TestBackendCrossValidation:
    def test_p3m_vs_pptreepm_nonlinear_power(self):
        """Identical ICs evolved with both short-range backends give the
        same nonlinear P(k).  The paper quotes 0.1% on its production
        comparison; at this toy scale the backends are algebraically
        identical so we demand numerical agreement."""
        cfg = SimulationConfig(
            box_size=64.0,
            n_per_dim=16,
            z_initial=25.0,
            z_final=5.0,
            n_steps=6,
            n_subcycles=3,
            seed=13,
        )
        sims = {}
        for backend in ("treepm", "p3m"):
            sim = HACCSimulation(cfg.with_(backend=backend))
            sim.run()
            sims[backend] = matter_power_spectrum(
                sim.particles.positions, 64.0, 16, subtract_shot_noise=False
            )
        a, b = sims["treepm"], sims["p3m"]
        rel = np.abs(a.power - b.power) / np.abs(a.power)
        assert rel.max() < 1e-3  # the paper's "agree to within 0.1%"

    def test_overloaded_run_matches_single_rank(self):
        """Full evolution with rank-decomposed (overloaded) short-range
        equals the single-rank run bit-for-bit at tolerance."""
        cfg = SimulationConfig(
            box_size=64.0,
            n_per_dim=16,
            z_initial=25.0,
            z_final=10.0,
            n_steps=2,
            n_subcycles=2,
            backend="treepm",
            seed=21,
        )
        single = HACCSimulation(cfg)
        multi = HACCSimulation(
            cfg,
            decomposition_dims=(2, 1, 1),
            overload_depth=cfg.rcut() + 0.5,
        )
        single.run()
        multi.run()
        d = single.particles.positions - multi.particles.positions
        d -= 64.0 * np.round(d / 64.0)
        assert np.abs(d).max() < 1e-8
