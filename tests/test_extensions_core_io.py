"""Tests for the Layzer-Irvine monitor, checkpointing, multi-tree solver
and threaded CIC — the paper's future-work / production features."""

import numpy as np
import pytest

from repro import HACCSimulation, SimulationConfig
from repro.core.diagnostics import LayzerIrvineMonitor
from repro.core.particles import Particles
from repro.grid.cic import cic_deposit
from repro.grid.threaded_cic import ThreadedCIC
from repro.grid.poisson import SpectralPoissonSolver
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.multitree import MultiTreeShortRange, rcb_blocks
from repro.shortrange.solvers import TreePMShortRange


class TestLayzerIrvine:
    def _run(self, n_steps=12, subtract_self=False):
        cfg = SimulationConfig(
            box_size=100.0,
            n_per_dim=16,
            z_initial=25.0,
            z_final=2.0,
            n_steps=n_steps,
            backend="pm",
            seed=4,
            step_spacing="loga",
        )
        sim = HACCSimulation(cfg)
        mon = LayzerIrvineMonitor(
            sim.poisson,
            cfg.cosmology.omega_m,
            subtract_self_energy=subtract_self,
        )
        mon.record(sim.particles, sim.a)
        sim.run(callback=lambda s: mon.record(s.particles, s.a))
        return mon

    def test_free_streaming_conserves_exactly(self):
        """With no forces T ~ a^-2 satisfies LI identically (U = 0 for a
        uniform lattice); the monitor residual reflects only quadrature."""
        from repro.core.timestepper import SubcycledStepper
        from repro.cosmology import WMAP7

        n = 8
        g = np.arange(n) * (100.0 / n)
        lattice = np.stack(
            np.meshgrid(g, g, g, indexing="ij"), -1
        ).reshape(-1, 3)
        parts = Particles(
            lattice.copy(),
            0.01 * np.ones((n**3, 3)),  # uniform bulk flow: U stays ~0
            np.ones(n**3),
            np.arange(n**3),
            100.0,
        )
        solver = SpectralPoissonSolver(8, 100.0)
        mon = LayzerIrvineMonitor(solver, WMAP7.omega_m)
        stepper = SubcycledStepper(
            WMAP7, lambda p: np.zeros_like(p), None, 1
        )
        edges = np.linspace(0.1, 0.5, 201)
        mon.record(parts, edges[0])
        for a0, a1 in zip(edges[:-1], edges[1:]):
            stepper.stream(parts, a0, a1)  # uniform translation
            parts.momenta *= 1.0
            mon.record(parts, a1)
        assert abs(mon.relative_residual()) < 1e-3

    def test_energies_have_physical_signs(self):
        mon = self._run()
        final = mon.states[-1]
        assert final.kinetic > 0
        assert final.potential < 0

    def test_kinetic_energy_grows(self):
        """Infall converts potential to kinetic energy as structure forms."""
        mon = self._run()
        t_vals = [s.kinetic for s in mon.states]
        assert t_vals[-1] > t_vals[0]

    def test_residual_within_discretization_floor(self):
        """The PM force is not the exact gradient of the measured field
        energy (spectral vs CIC-weight gradients), leaving a
        discretization floor; the residual must stay within ~15% of the
        integrated energy flux."""
        mon = self._run()
        assert abs(mon.relative_residual()) < 0.15

    def test_pairwise_variant_also_bounded(self):
        mon = self._run(subtract_self=True)
        assert abs(mon.relative_residual()) < 0.15
        # pairwise potential is much smaller than the field energy
        field = self._run()
        assert abs(mon.states[-1].potential) < abs(
            field.states[-1].potential
        )

    def test_detects_broken_dynamics(self):
        """Diagnostic power: doubling the force prefactor mid-analysis
        (energies bookkept with the wrong omega_m) blows the residual up."""
        cfg = SimulationConfig(
            box_size=100.0,
            n_per_dim=16,
            z_initial=25.0,
            z_final=2.0,
            n_steps=12,
            backend="pm",
            seed=4,
            step_spacing="loga",
        )
        sim = HACCSimulation(cfg)
        good = LayzerIrvineMonitor(sim.poisson, cfg.cosmology.omega_m)
        bad = LayzerIrvineMonitor(sim.poisson, 3.0 * cfg.cosmology.omega_m)
        good.record(sim.particles, sim.a)
        bad.record(sim.particles, sim.a)

        def cb(s):
            good.record(s.particles, s.a)
            bad.record(s.particles, s.a)

        sim.run(callback=cb)
        assert abs(bad.relative_residual()) > 2 * abs(
            good.relative_residual()
        )

    def test_needs_two_states(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=8, backend="pm")
        sim = HACCSimulation(cfg)
        mon = LayzerIrvineMonitor(sim.poisson, 0.25)
        mon.record(sim.particles, sim.a)
        with pytest.raises(RuntimeError):
            mon.residual()

    def test_measure_validates_a(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=8, backend="pm")
        sim = HACCSimulation(cfg)
        mon = LayzerIrvineMonitor(sim.poisson, 0.25)
        with pytest.raises(ValueError):
            mon.measure(sim.particles, 0.0)


class TestCheckpoint:
    def _config(self):
        return SimulationConfig(
            box_size=64.0,
            n_per_dim=8,
            z_initial=25.0,
            z_final=5.0,
            n_steps=4,
            backend="pm",
            seed=9,
        )

    def test_resume_is_bitwise_identical(self, tmp_path):
        """Checkpoint mid-run, resume, and match the uninterrupted run."""
        a = HACCSimulation(self._config())
        a.step()
        a.step()
        path = save_checkpoint(tmp_path / "ckpt", a)
        b = load_checkpoint(path)
        a.run()
        b.run()
        assert np.array_equal(a.particles.positions, b.particles.positions)
        assert np.array_equal(a.particles.momenta, b.particles.momenta)
        assert a.a == b.a

    def test_config_round_trips(self, tmp_path):
        sim = HACCSimulation(self._config())
        path = save_checkpoint(tmp_path / "c", sim)
        restored = load_checkpoint(path)
        assert restored.config == sim.config
        assert restored.config.cosmology.omega_m == pytest.approx(0.265)

    def test_step_index_preserved(self, tmp_path):
        sim = HACCSimulation(self._config())
        sim.step()
        path = save_checkpoint(tmp_path / "c", sim)
        restored = load_checkpoint(path)
        assert restored._step_index == 1
        assert restored.a == pytest.approx(sim.a)


class TestMultiTree:
    def test_rcb_blocks_partition(self, rng):
        pos = rng.uniform(0, 10, (1000, 3))
        blocks = rcb_blocks(pos, np.ones(1000), 8)
        assert len(blocks) == 8
        combined = np.concatenate(blocks)
        assert np.array_equal(np.sort(combined), np.arange(1000))

    def test_rcb_blocks_balanced_even_when_clustered(self, rng):
        """Median splits equalize counts regardless of clustering —
        the load-balance motivation."""
        pos = np.concatenate(
            [
                rng.standard_normal((900, 3)) * 0.2 + 2.0,
                rng.uniform(0, 10, (100, 3)),
            ]
        )
        blocks = rcb_blocks(pos, np.ones(1000), 4)
        counts = np.array([b.size for b in blocks])
        assert counts.max() - counts.min() <= 1

    def test_blocks_validation(self, rng):
        pos = rng.uniform(0, 1, (10, 3))
        with pytest.raises(ValueError):
            rcb_blocks(pos, np.ones(10), 3)  # not a power of two
        with pytest.raises(ValueError):
            rcb_blocks(pos, np.ones(10), 0)

    @pytest.mark.parametrize("n_trees", [1, 2, 4, 8])
    def test_matches_single_tree(self, grid_force_fit, rng, n_trees):
        pos = rng.uniform(0, 12.0, (500, 3))
        m = rng.uniform(0.5, 1.5, 500)
        ref = TreePMShortRange(
            ShortRangeKernel(grid_force_fit, 1.0), leaf_size=24
        ).accelerations(pos, m, box_size=12.0)
        multi = MultiTreeShortRange(
            ShortRangeKernel(grid_force_fit, 1.0),
            leaf_size=24,
            n_trees=n_trees,
        ).accelerations(pos, m, box_size=12.0)
        assert np.allclose(ref, multi, atol=1e-11)

    def test_balance_report(self, grid_force_fit, rng):
        solver = MultiTreeShortRange(
            ShortRangeKernel(grid_force_fit, 1.0), leaf_size=16, n_trees=4
        )
        # clustered cloud: single tree would have wildly uneven subtrees
        pos = np.concatenate(
            [
                rng.standard_normal((800, 3)) * 0.4 + 5.0,
                rng.uniform(0, 12.0, (200, 3)),
            ]
        )
        solver.accelerations(np.mod(pos, 12.0), np.ones(1000), box_size=12.0)
        report = solver.last_balance_report()
        assert report["blocks"] == 4
        assert report["build_imbalance"] < 1.3

    def test_report_requires_evaluation(self, grid_force_fit):
        solver = MultiTreeShortRange(ShortRangeKernel(grid_force_fit, 1.0))
        with pytest.raises(RuntimeError):
            solver.last_balance_report()

    def test_constructor_validation(self, grid_force_fit):
        k = ShortRangeKernel(grid_force_fit, 1.0)
        with pytest.raises(ValueError):
            MultiTreeShortRange(k, n_trees=3)
        with pytest.raises(ValueError):
            MultiTreeShortRange(k, leaf_size=0)


class TestThreadedCIC:
    @pytest.mark.parametrize("strategy", ThreadedCIC.STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_matches_serial(self, rng, strategy, workers):
        pos = rng.uniform(0, 25.0, (3000, 3))
        w = rng.uniform(0.5, 2.0, 3000)
        serial = cic_deposit(pos, 16, 25.0, w)
        threaded = ThreadedCIC(workers, strategy).deposit(pos, 16, 25.0, w)
        assert np.allclose(threaded, serial, atol=1e-12)

    def test_privatize_worker_independence(self, rng):
        """Result identical across worker counts (deterministic
        reduction order)."""
        pos = rng.uniform(0, 25.0, (2000, 3))
        a = ThreadedCIC(2, "privatize").deposit(pos, 8, 25.0)
        b = ThreadedCIC(8, "privatize").deposit(pos, 8, 25.0)
        assert np.allclose(a, b, atol=1e-12)

    def test_report_memory_cost(self, rng):
        pos = rng.uniform(0, 25.0, (100, 3))
        t = ThreadedCIC(4, "privatize")
        t.deposit(pos, 8, 25.0)
        assert t.last_report.private_grid_bytes == 4 * 8**3 * 8
        slab = ThreadedCIC(4, "slab")
        slab.deposit(pos, 8, 25.0)
        assert slab.last_report.private_grid_bytes == 8**3 * 8

    def test_slab_load_tracks_particle_distribution(self, rng):
        """Slab strategy inherits spatial imbalance — the trade-off vs
        privatization."""
        pos = rng.uniform(0, 25.0, (4000, 3))
        pos[:, 0] = rng.uniform(0, 6.0, 4000)  # everything in low-x slabs
        t = ThreadedCIC(4, "slab")
        t.deposit(pos, 16, 25.0)
        assert t.last_report.load_imbalance > 2.0
        p = ThreadedCIC(4, "privatize")
        p.deposit(pos, 16, 25.0)
        assert p.last_report.load_imbalance < 1.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedCIC(0)
        with pytest.raises(ValueError):
            ThreadedCIC(2, "atomic")
