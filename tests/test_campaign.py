"""Tests for the campaign orchestrator (``repro.campaign``).

Covers the three layers separately and together:

* spec expansion (grids, explicit runs, validation, stable identity);
* journal replay (state machine, retry budget, torn lines, reconcile);
* supervision with fake clocks/launchers (timeout -> retry ->
  quarantine, heartbeat hang detection, exactly-once ledgering);
* graceful-shutdown signal plumbing;
* a chaos lane: SIGKILL the supervisor *and* its child mid-run, resume,
  and require exactly-once ledger entries plus a bit-identical resumed
  trajectory.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignQueue,
    CampaignSupervisor,
    JournalError,
    SpecError,
    SupervisionPolicy,
    campaign_status,
    expand_spec,
    load_spec,
)
from repro.campaign.queue import CampaignJournal
from repro.campaign.supervisor import Heartbeat


BASE = {"box_size": 64.0, "n_per_dim": 8, "n_steps": 3,
        "n_subcycles": 1, "backend": "pm"}


def _spec(grid=None, runs=None, campaign=None):
    doc = {"base": dict(BASE)}
    if grid:
        doc["grid"] = grid
    if runs:
        doc["runs"] = runs
    if campaign:
        doc["campaign"] = campaign
    return expand_spec(doc, name="t")


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
class TestSpecExpansion:
    def test_grid_product_in_key_order(self):
        spec = _spec(grid={"seed": [1, 2], "n_steps": [3, 4]})
        assert len(spec.runs) == 4
        combos = [(r.config.seed, r.config.n_steps) for r in spec.runs]
        assert combos == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_expansion_is_deterministic(self):
        a = _spec(grid={"seed": [1, 2]})
        b = _spec(grid={"seed": [1, 2]})
        assert [r.run_id for r in a.runs] == [r.run_id for r in b.runs]
        assert a.campaign_id == b.campaign_id

    def test_edited_spec_changes_campaign_id(self):
        a = _spec(grid={"seed": [1, 2]})
        b = _spec(grid={"seed": [1, 3]})
        assert a.campaign_id != b.campaign_id

    def test_dotted_cosmology_override(self):
        spec = _spec(grid={"cosmology.sigma8": [0.7, 0.9]})
        assert [r.config.cosmology.sigma8 for r in spec.runs] == [0.7, 0.9]

    def test_explicit_runs_carry_extra_args(self):
        spec = _spec(runs=[{"seed": 5, "extra_args": ["--retry"]}])
        assert spec.runs[0].config.seed == 5
        assert spec.runs[0].extra_args == ("--retry",)

    def test_bare_base_is_one_run(self):
        assert len(_spec().runs) == 1

    def test_missing_base_rejected(self):
        with pytest.raises(SpecError, match=r"\[base\]"):
            expand_spec({"grid": {"seed": [1]}})

    def test_unknown_section_rejected(self):
        with pytest.raises(SpecError, match="unknown spec sections"):
            expand_spec({"base": dict(BASE), "bogus": {}})

    def test_unknown_campaign_key_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            _spec(campaign={"naem": "typo"})

    def test_scalar_grid_axis_rejected(self):
        with pytest.raises(SpecError, match="non-empty list"):
            _spec(grid={"seed": 1})

    def test_extra_args_cannot_be_an_axis(self):
        with pytest.raises(SpecError, match="extra_args"):
            _spec(grid={"extra_args": [["--retry"]]})

    def test_invalid_config_is_a_spec_error(self):
        with pytest.raises(SpecError, match="invalid config"):
            _spec(grid={"box_size": [-1.0]})

    def test_zero_timeout_means_disabled(self):
        spec = _spec(campaign={"timeout_s": 0, "heartbeat_timeout_s": 0})
        assert spec.policy.timeout_s is None
        assert spec.policy.heartbeat_timeout_s is None

    def test_policy_validation(self):
        with pytest.raises(SpecError, match="max_attempts"):
            SupervisionPolicy(max_attempts=0)

    def test_load_spec_toml(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text(
            "[campaign]\nname='s'\nmax_attempts=2\n"
            "[base]\nbox_size=64.0\nn_per_dim=8\nn_steps=3\n"
            "n_subcycles=1\nbackend='pm'\n"
            "[grid]\nseed=[1,2]\n"
        )
        spec = load_spec(path)
        assert spec.name == "s"
        assert spec.policy.max_attempts == 2
        assert len(spec.runs) == 2

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps({"base": BASE}))
        assert len(load_spec(path).runs) == 1

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "nope.toml")


# ----------------------------------------------------------------------
# journal + queue replay
# ----------------------------------------------------------------------
class TestQueueReplay:
    def _queue(self, tmp_path, max_attempts=2, n=1):
        spec = _spec(
            grid={"seed": list(range(1, n + 1))},
            campaign={"max_attempts": max_attempts},
        )
        queue = CampaignQueue(tmp_path / "camp", spec)
        queue.open()
        return spec, queue

    def test_fresh_open_writes_header_and_sidecar(self, tmp_path):
        spec, queue = self._queue(tmp_path)
        sidecar = json.loads(
            (tmp_path / "camp" / "campaign.json").read_text()
        )
        assert sidecar["campaign_id"] == spec.campaign_id
        states = queue.states()
        assert all(s.state == "PENDING" for s in states.values())

    def test_done_lifecycle(self, tmp_path):
        spec, queue = self._queue(tmp_path)
        rid = spec.runs[0].run_id
        queue.record_dispatch(rid, 1, 123)
        assert queue.states()[rid].state == "RUNNING"
        queue.record_exit(rid, 1, "done", 0)
        state = queue.states()[rid]
        assert state.state == "DONE"
        assert state.attempts == 1
        assert queue.next_dispatchable() is None

    def test_failures_quarantine_at_budget(self, tmp_path):
        spec, queue = self._queue(tmp_path, max_attempts=2)
        rid = spec.runs[0].run_id
        queue.record_dispatch(rid, 1, 1)
        queue.record_exit(rid, 1, "failed", 1)
        assert queue.states()[rid].state == "FAILED"
        assert queue.next_dispatchable().run_id == rid
        queue.record_dispatch(rid, 2, 2)
        queue.record_exit(rid, 2, "timeout", None)
        state = queue.states()[rid]
        assert state.state == "QUARANTINED"
        assert state.failures == 2
        assert queue.next_dispatchable() is None

    def test_interruption_does_not_charge_the_budget(self, tmp_path):
        spec, queue = self._queue(tmp_path, max_attempts=2)
        rid = spec.runs[0].run_id
        for attempt in (1, 2, 3):
            queue.record_dispatch(rid, attempt, attempt)
            queue.record_exit(rid, attempt, "interrupted", 75)
        state = queue.states()[rid]
        assert state.state == "PENDING"
        assert state.failures == 0
        assert state.attempts == 3

    def test_reconcile_converts_in_flight_to_dispatchable(self, tmp_path):
        spec, queue = self._queue(tmp_path)
        rid = spec.runs[0].run_id
        queue.record_dispatch(rid, 1, 99)
        # replay sees dispatched-without-exit: the supervisor died
        assert queue.states()[rid].in_flight
        assert queue.reconcile() == [rid]
        state = queue.states()[rid]
        assert not state.in_flight
        assert state.state == "PENDING"
        assert state.failures == 0  # environment fault, not the config's
        assert state.last_outcome == "supervisor-crash"

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        spec, queue = self._queue(tmp_path)
        rid = spec.runs[0].run_id
        queue.record_dispatch(rid, 1, 7)
        queue.record_exit(rid, 1, "done", 0)
        with open(queue.journal.path, "a") as fh:
            fh.write('{"kind": "exit", "run":')  # torn mid-crash
        assert queue.states()[rid].state == "DONE"

    def test_resume_without_journal_fails(self, tmp_path):
        spec = _spec()
        queue = CampaignQueue(tmp_path / "nowhere", spec)
        with pytest.raises(JournalError, match="nothing to resume"):
            queue.open(resume=True)

    def test_edited_spec_fails_loudly(self, tmp_path):
        spec, _ = self._queue(tmp_path)
        other = _spec(grid={"seed": [9]})
        queue2 = CampaignQueue(tmp_path / "camp", other)
        with pytest.raises(JournalError, match="spec changed"):
            queue2.open(resume=True)

    def test_ledgered_fact_and_unledgered_view(self, tmp_path):
        spec, queue = self._queue(tmp_path)
        rid = spec.runs[0].run_id
        queue.record_dispatch(rid, 1, 7)
        queue.record_exit(rid, 1, "done", 0)
        assert [s.run_id for s in queue.unledgered_done()] == [rid]
        queue.record_ledgered(rid, "run-0001-abc")
        assert queue.unledgered_done() == []
        assert queue.states()[rid].ledger_run_id == "run-0001-abc"

    def test_summary_counts(self, tmp_path):
        spec, queue = self._queue(tmp_path, n=2)
        r0, r1 = (r.run_id for r in spec.runs)
        queue.record_dispatch(r0, 1, 1)
        queue.record_exit(r0, 1, "done", 0)
        summary = queue.summary()
        assert summary == {
            "runs": 2,
            "counts": {"DONE": 1, "PENDING": 1},
            "done": 1,
            "complete": False,
            "ok": False,
        }

    def test_journal_append_is_durable_jsonl(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"kind": "x"})
        events = journal.replay()
        assert events[0]["kind"] == "x"
        assert "t" in events[0]


# ----------------------------------------------------------------------
# supervision with fakes
# ----------------------------------------------------------------------
class FakeClock:
    """Monotonic fake time; sleeping advances it."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.t += max(float(seconds), 0.0)


class FakeProc:
    """Popen stand-in: exits with ``code`` after ``polls`` poll calls
    (never, if ``polls`` is None) unless terminated first."""

    def __init__(self, code=0, polls=0, pid=4242):
        self.code = code
        self.polls_left = polls
        self.pid = pid
        self.rc = None
        self.terminated = False

    def poll(self):
        if self.rc is not None:
            return self.rc
        if self.polls_left is not None:
            if self.polls_left <= 0:
                self.rc = self.code
                return self.rc
            self.polls_left -= 1
        return None

    def terminate(self):
        self.terminated = True
        self.rc = -int(signal.SIGTERM)

    def kill(self):
        self.rc = -int(signal.SIGKILL)

    def wait(self, timeout=None):
        if self.rc is None:
            raise subprocess.TimeoutExpired("fake", timeout or 0)
        return self.rc


def _fake_supervisor(tmp_path, procs, *, n=1, policy_kw=None):
    """A supervisor whose children are FakeProcs popped off ``procs``."""
    campaign = {
        "max_attempts": 2,
        "timeout_s": 10.0,
        "heartbeat_timeout_s": 0,
        "grace_s": 0.0,
        "poll_interval_s": 1.0,
        "retry_base_delay": 0.0,
        "retry_max_delay": 0.0,
    }
    campaign.update(policy_kw or {})
    spec = _spec(grid={"seed": list(range(1, n + 1))}, campaign=campaign)
    clock = FakeClock()
    launched = []

    def launcher(cmd, log_path, env):
        proc = procs.pop(0)
        launched.append((cmd, proc))
        return proc

    supervisor = CampaignSupervisor(
        spec,
        tmp_path / "camp",
        ledger_root=tmp_path / "ledger",
        launcher=launcher,
        clock=clock,
        sleep=clock.sleep,
    )
    return spec, supervisor, clock, launched


class TestSupervisor:
    def test_success_ledgers_each_run_exactly_once(self, tmp_path):
        from repro.instrument.store import RunLedger

        spec, sup, _, launched = _fake_supervisor(
            tmp_path, [FakeProc(code=0), FakeProc(code=0)], n=2
        )
        assert sup.run() == 0
        entries = RunLedger(tmp_path / "ledger").entries()
        assert len(entries) == 2
        assert sorted(e.extra["campaign_run"] for e in entries) == sorted(
            r.run_id for r in spec.runs
        )
        assert all(
            e.extra["campaign_id"] == spec.campaign_id for e in entries
        )
        # idempotent: a re-run dispatches nothing and records nothing
        spec2, sup2, _, launched2 = _fake_supervisor(tmp_path, [], n=2)
        assert sup2.run(resume=True) == 0
        assert launched2 == []
        assert len(RunLedger(tmp_path / "ledger").entries()) == 2

    def test_command_carries_config_resume_and_extra_args(self, tmp_path):
        spec, sup, _, launched = _fake_supervisor(
            tmp_path, [FakeProc(code=0)]
        )
        sup.run()
        cmd, _ = launched[0]
        run_dir = sup.run_dir(spec.runs[0].run_id)
        assert "--config" in cmd and str(run_dir / "config.json") in cmd
        assert "--resume" in cmd and str(run_dir / "ckpt") in cmd
        assert "--telemetry" in cmd
        assert (run_dir / "config.json").is_file()

    def test_timeout_then_retry_then_quarantine(self, tmp_path):
        spec, sup, clock, launched = _fake_supervisor(
            tmp_path,
            [FakeProc(polls=None), FakeProc(polls=None)],
            policy_kw={"timeout_s": 3.0},
        )
        assert sup.run() == 1  # honest non-zero exit, campaign complete
        assert len(launched) == 2
        assert all(p.terminated for _, p in launched)
        state = sup.queue.states()[spec.runs[0].run_id]
        assert state.state == "QUARANTINED"
        assert state.failures == 2
        assert state.last_outcome == "timeout"
        status = campaign_status(spec, tmp_path / "camp")
        assert status["complete"] and not status["ok"]

    def test_quarantine_does_not_block_later_runs(self, tmp_path):
        spec, sup, _, _ = _fake_supervisor(
            tmp_path,
            [FakeProc(code=1), FakeProc(code=1), FakeProc(code=0)],
            n=2,
        )
        assert sup.run() == 1
        states = sup.queue.states()
        assert states[spec.runs[0].run_id].state == "QUARANTINED"
        assert states[spec.runs[1].run_id].state == "DONE"

    def test_hang_detected_by_silent_heartbeat(self, tmp_path):
        spec, sup, clock, launched = _fake_supervisor(
            tmp_path,
            [FakeProc(polls=None), FakeProc(polls=None)],
            policy_kw={"timeout_s": 0, "heartbeat_timeout_s": 2.0},
        )
        assert sup.run() == 1
        state = sup.queue.states()[spec.runs[0].run_id]
        assert state.last_outcome == "hang"
        assert state.state == "QUARANTINED"

    def test_heartbeat_progress_defers_the_hang(self, tmp_path):
        stream = tmp_path / "t.jsonl"
        clock = FakeClock()
        hb = Heartbeat(stream, clock)
        clock.t = 5.0
        assert hb.poll() == pytest.approx(5.0)  # no file: silence grows
        stream.write_text("line\n")
        assert hb.poll() == 0.0  # bytes appeared: progress
        clock.t = 8.0
        assert hb.poll() == pytest.approx(3.0)
        with open(stream, "a") as fh:
            fh.write("more\n")
        assert hb.poll() == 0.0

    def test_backoff_consumes_fake_time_between_attempts(self, tmp_path):
        spec, sup, clock, _ = _fake_supervisor(
            tmp_path,
            [FakeProc(code=1, polls=0), FakeProc(code=1, polls=0)],
            policy_kw={"retry_base_delay": 4.0, "retry_max_delay": 4.0},
        )
        t_before = clock.t
        sup.run()
        # at least the base backoff elapsed on the fake clock
        assert clock.t - t_before >= 4.0

    def test_unledgered_done_repaired_on_resume(self, tmp_path):
        from repro.instrument.store import RunLedger

        # first attempt dies between 'exit done' and 'ledgered'
        spec, sup, _, _ = _fake_supervisor(tmp_path, [FakeProc(code=0)])
        sup.queue.open()
        rid = spec.runs[0].run_id
        sup.queue.record_dispatch(rid, 1, 1)
        sup.queue.record_exit(rid, 1, "done", 0)
        # resume repairs the crash window: exactly one entry appears
        spec2, sup2, _, launched = _fake_supervisor(tmp_path, [])
        assert sup2.run(resume=True) == 0
        assert launched == []
        entries = RunLedger(tmp_path / "ledger").entries()
        assert len(entries) == 1
        assert sup2.queue.states()[rid].ledger_run_id == entries[0].run_id


# ----------------------------------------------------------------------
# signals
# ----------------------------------------------------------------------
class TestSignals:
    def test_graceful_shutdown_raises_and_restores(self):
        from repro.resilience.signals import (
            ShutdownRequested,
            graceful_shutdown,
        )

        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(ShutdownRequested) as exc_info:
            with graceful_shutdown():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # interrupted by the raise
                pytest.fail("signal did not interrupt")  # pragma: no cover
        assert exc_info.value.signal_name == "SIGTERM"
        assert signal.getsignal(signal.SIGTERM) is before

    def test_shutdown_requested_evades_except_exception(self):
        from repro.resilience.signals import ShutdownRequested

        with pytest.raises(ShutdownRequested):
            try:
                raise ShutdownRequested(signal.SIGTERM)
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("swallowed by except Exception")

    def test_interrupted_exit_code_is_distinct(self):
        from repro.resilience.signals import INTERRUPTED_EXIT_CODE

        assert INTERRUPTED_EXIT_CODE == 75  # EX_TEMPFAIL: resumable
        assert INTERRUPTED_EXIT_CODE not in (0, 1, 2)


# ----------------------------------------------------------------------
# monitor integration
# ----------------------------------------------------------------------
class TestMonitorWaiting:
    def test_missing_stream_renders_waiting(self):
        from repro.instrument.monitor import render_dashboard
        from repro.instrument.telemetry import StreamFollower

        follower = StreamFollower("/nonexistent/telemetry.jsonl")
        follower.poll()  # must tolerate the missing file
        out = render_dashboard([("r000", follower.data)])
        assert "waiting" in out

    def test_campaign_stream_paths_cover_undispatched_runs(self, tmp_path):
        from repro.campaign.supervisor import campaign_stream_paths

        spec = _spec(grid={"seed": [1, 2]})
        paths = campaign_stream_paths(spec, tmp_path)
        assert len(paths) == 2
        assert all(p.endswith("telemetry.jsonl") for _, p in paths)
        assert not any(Path(p).exists() for _, p in paths)


# ----------------------------------------------------------------------
# chaos: SIGKILL the supervisor and its child mid-run, resume
# ----------------------------------------------------------------------
def _repro_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                 if p]
    )
    return env


def _campaign_cmd(action, spec_path, camp_dir, ledger_dir):
    return [
        sys.executable, "-m", "repro", "campaign", action,
        str(spec_path), "--dir", str(camp_dir),
        "--ledger", str(ledger_dir),
    ]


@pytest.mark.slow
@pytest.mark.chaos
class TestCampaignChaos:
    SPEC = (
        "[campaign]\n"
        "name = 'chaos'\n"
        "max_attempts = 3\n"
        "timeout_s = 300.0\n"
        "heartbeat_timeout_s = 120.0\n"
        "poll_interval_s = 0.05\n"
        "retry_base_delay = 0.01\n"
        "retry_max_delay = 0.05\n"
        "extra_args = ['--inject-slowdown', 'shortrange:0.4']\n"
        "[base]\n"
        "box_size = 64.0\n"
        "n_per_dim = 8\n"
        "n_steps = 5\n"
        "n_subcycles = 1\n"
        "backend = 'treepm'\n"
        "[grid]\n"
        "seed = [1, 2]\n"
    )

    def _wait_for(self, predicate, timeout=120.0, interval=0.1):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(interval)
        return False

    def test_sigkill_resume_exactly_once_and_bit_identical(self, tmp_path):
        spec_path = tmp_path / "chaos.toml"
        spec_path.write_text(self.SPEC)
        camp = tmp_path / "camp"
        ledger = tmp_path / "ledger"
        env = _repro_env()

        supervisor = subprocess.Popen(
            _campaign_cmd("run", spec_path, camp, ledger),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            journal = camp / "journal.jsonl"

            def in_flight_run():
                """The run id dispatched but not yet exited, or None."""
                if not journal.is_file():
                    return None
                open_runs = set()
                for line in open(journal):
                    try:
                        ev = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if ev.get("kind") == "dispatched":
                        open_runs.add(ev["run"])
                    elif ev.get("kind") == "exit":
                        open_runs.discard(ev["run"])
                return next(iter(open_runs), None)

            def mid_flight_with_progress():
                # kill only while an attempt is in flight AND its
                # telemetry shows a completed step (manifest + step
                # line), so the resume is a genuine mid-trajectory one
                rid = in_flight_run()
                if rid is None:
                    return False
                tel = camp / "runs" / rid / "telemetry.jsonl"
                return tel.is_file() and sum(1 for _ in open(tel)) >= 2

            assert self._wait_for(mid_flight_with_progress), \
                "campaign never started stepping"
            # simulate a node death: supervisor AND its child go down
            child_pids = [
                ev.get("pid")
                for ev in map(json.loads, open(journal))
                if ev.get("kind") == "dispatched"
            ]
            os.kill(supervisor.pid, signal.SIGKILL)
            supervisor.wait(timeout=30)
            for pid in child_pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
            self._wait_for(
                lambda: all(not _alive(p) for p in child_pids if p)
            )
        finally:
            if supervisor.poll() is None:  # pragma: no cover - cleanup
                supervisor.kill()
                supervisor.wait()

        resumed = subprocess.run(
            _campaign_cmd("resume", spec_path, camp, ledger),
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr

        status_proc = subprocess.run(
            _campaign_cmd("status", spec_path, camp, ledger) + ["--json"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert status_proc.returncode == 0, status_proc.stderr
        status = json.loads(status_proc.stdout)
        assert status["ok"] and status["complete"]
        by_run = {r["run"]: r for r in status["runs"]}
        assert all(r["state"] == "DONE" for r in by_run.values())
        # the killed run took one extra (uncharged) attempt
        attempts = sorted(r["attempts"] for r in by_run.values())
        assert attempts == [1, 2]
        assert all(r["failures"] == 0 for r in by_run.values())

        # exactly-once ledger: one entry per campaign run, no dupes
        entries = [
            json.loads(line)
            for line in open(ledger / "index.jsonl")
            if line.strip()
        ]
        campaign_runs = [e["extra"]["campaign_run"] for e in entries]
        assert sorted(campaign_runs) == sorted(by_run)
        assert len(set(campaign_runs)) == len(campaign_runs)

        # bit-identical resumed trajectory: the interrupted run's final
        # checkpoint must equal an uninterrupted reference of the same
        # config (the PR-4 fault-free resume contract, end to end)
        interrupted_run = next(
            r for r in by_run.values() if r["attempts"] == 2
        )["run"]
        run_dir = camp / "runs" / interrupted_run
        final = sorted((run_dir / "ckpt").glob("ckpt_*.npz"))[-1]
        ref_dir = tmp_path / "ref"
        ref = subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--config", str(run_dir / "config.json"),
             "--outdir", str(ref_dir), "--checkpoint-every", "1000"],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert ref.returncode == 0, ref.stderr
        ref_final = sorted(ref_dir.glob("ckpt_*.npz"))[-1]
        assert final.name == ref_final.name
        got = np.load(final)
        want = np.load(ref_final)
        np.testing.assert_array_equal(got["positions"],
                                      want["positions"])
        np.testing.assert_array_equal(got["momenta"], want["momenta"])


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


# ----------------------------------------------------------------------
# standalone run interruption (satellite: SIGTERM -> checkpoint + 75)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.chaos
class TestRunInterruption:
    def test_sigterm_checkpoints_and_exits_75(self, tmp_path):
        outdir = tmp_path / "ckpt"
        tel = tmp_path / "telemetry.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run",
             "--n-per-dim", "8", "--steps", "50", "--subcycles", "1",
             "--backend", "treepm",
             "--inject-slowdown", "shortrange:0.3",
             "--outdir", str(outdir), "--checkpoint-every", "1",
             "--telemetry", str(tel)],
            env=_repro_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if tel.is_file() and sum(1 for _ in open(tel)) >= 3:
                    break
                time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
        assert rc == 75
        assert sorted(outdir.glob("ckpt_*.npz"))  # tail state preserved
        end = json.loads(open(tel).readlines()[-1])
        assert end["kind"] == "end"
        assert end["verdict"] == "INTERRUPTED"
