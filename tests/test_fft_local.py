"""Tests for the from-scratch sequential FFT (mixed-radix + Bluestein)."""

import numpy as np
import pytest

from repro.fft.local import (
    SequentialFFT,
    fft1d,
    ifft1d,
    smallest_prime_factor,
)


class TestSmallestPrimeFactor:
    @pytest.mark.parametrize(
        "n,expected",
        [(2, 2), (3, 3), (4, 2), (9, 3), (15, 3), (49, 7), (97, 97), (121, 11)],
    )
    def test_values(self, n, expected):
        assert smallest_prime_factor(n) == expected

    def test_rejects_below_two(self):
        with pytest.raises(ValueError):
            smallest_prime_factor(1)


class TestAgainstNumpy:
    #: power-of-two, composite, odd, prime (direct), large prime
    #: (Bluestein), and the paper's non-power-of-two grid sizes scaled down
    LENGTHS = [1, 2, 3, 4, 5, 8, 12, 15, 16, 27, 31, 37, 64, 97, 100, 128,
               121, 160, 200, 360, 640, 922]

    @pytest.mark.parametrize("n", LENGTHS)
    def test_forward_complex(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft1d(x), np.fft.fft(x), atol=1e-9 * max(n, 1))

    @pytest.mark.parametrize("n", LENGTHS)
    def test_inverse_complex(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(ifft1d(x), np.fft.ifft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [8, 15, 97])
    def test_real_input(self, n, rng):
        x = rng.standard_normal(n)
        assert np.allclose(fft1d(x), np.fft.fft(x), atol=1e-9)

    def test_roundtrip(self, rng):
        x = rng.standard_normal(360) + 1j * rng.standard_normal(360)
        assert np.allclose(ifft1d(fft1d(x)), x, atol=1e-9)

    def test_batched_rows(self, rng):
        x = rng.standard_normal((7, 48)) + 1j * rng.standard_normal((7, 48))
        assert np.allclose(fft1d(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_axis_argument(self, rng):
        x = rng.standard_normal((12, 5, 6))
        for ax in range(3):
            assert np.allclose(
                fft1d(x, axis=ax), np.fft.fft(x, axis=ax), atol=1e-9
            )

    def test_linearity(self, rng):
        a = rng.standard_normal(30) + 1j * rng.standard_normal(30)
        b = rng.standard_normal(30)
        lhs = fft1d(2.0 * a + 3.0 * b)
        rhs = 2.0 * fft1d(a) + 3.0 * fft1d(b)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_parseval(self, rng):
        x = rng.standard_normal(128)
        xk = fft1d(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(
            np.sum(np.abs(xk) ** 2) / 128, rel=1e-10
        )

    def test_delta_function_is_flat(self):
        x = np.zeros(20)
        x[0] = 1.0
        assert np.allclose(fft1d(x), np.ones(20))


class TestSequentialFFT:
    def test_backends_agree(self, rng):
        x = rng.standard_normal((3, 40)) + 1j * rng.standard_normal((3, 40))
        native = SequentialFFT("native")
        fast = SequentialFFT("numpy")
        assert np.allclose(native.fft(x), fast.fft(x), atol=1e-9)
        assert np.allclose(native.ifft(x), fast.ifft(x), atol=1e-9)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            SequentialFFT("fftw")

    def test_flop_count(self):
        f = SequentialFFT()
        assert f.flops(1024) == pytest.approx(5 * 1024 * 10)
        assert f.flops(1024, batch=3) == pytest.approx(3 * 5 * 1024 * 10)

    def test_flops_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SequentialFFT().flops(0)
