"""Tests for the analytic work accounting and host-calibrated roofline.

The hand-computed assertions here pin every constant of the work model
in :mod:`repro.instrument.perfcount` — a single pair interaction, a
one-particle CIC pass, a 4^3 FFT — and hold the counted work invariant
across executors and kernel backends.  The zero-overhead guard bounds
what the disabled instrumentation can possibly cost a production run.
"""

from __future__ import annotations

import importlib.util
import json
import time

import numpy as np
import pytest

from repro import instrument
from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.grid.cic import cic_deposit, cic_interpolate
from repro.grid.poisson import SpectralPoissonSolver
from repro.instrument import (
    NullRegistry,
    Registry,
    PhaseWork,
    achieved_gflops,
    render_roofline,
    roofline_table,
    step_perf,
    use,
    work_summary,
)
from repro.instrument import perfcount
from repro.instrument.monitor import render_dashboard
from repro.instrument.registry import StepRecord
from repro.instrument.report import bench_provenance_notes
from repro.instrument.store import RunEntry
from repro.instrument.telemetry import (
    RunStream,
    StepTelemetry,
    Telemetry,
    use_telemetry,
)
from repro.machine.calibrate import (
    HostCalibration,
    calibrate,
    host_fingerprint,
)
from repro.shortrange.grid_force import default_grid_force_fit
from repro.shortrange.kernel import ShortRangeKernel

HAVE_NUMBA = importlib.util.find_spec("numba") is not None


def tiny_sim(**kwargs) -> HACCSimulation:
    base = dict(
        box_size=32.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=20.0,
        n_steps=2,
        backend="treepm",
        seed=7,
    )
    base.update(kwargs)
    return HACCSimulation(SimulationConfig(**base))


# ----------------------------------------------------------------------
# hand-computed work counts
# ----------------------------------------------------------------------
class TestPairWork:
    @pytest.mark.parametrize(
        "dtype,itemsize", [(np.float64, 8), (np.float32, 4)]
    )
    def test_single_pair_flops_and_bytes(self, dtype, itemsize):
        """One (target, source) pair: 21 flops, 4 streamed operands."""
        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(fit, spacing=1.0, dtype=dtype)
        reg = Registry()
        with use(reg):
            kernel.accumulate(
                np.zeros((1, 3)), np.ones((1, 3)), np.ones(1)
            )
        assert reg.counter("pp.interactions") == 1
        assert reg.counter("pp.flops") == perfcount.PAIR_FLOPS == 21.0
        assert reg.counter("pp.bytes") == 4 * itemsize

    def test_f32_halves_bytes_for_identical_flops(self):
        """The bandwidth half of mixed precision, from the counters."""
        assert perfcount.pair_bytes(100, 4) == perfcount.pair_bytes(
            100, 8
        ) / 2

    def test_worker_clone_does_not_touch_registry(self):
        """mirror_counters=False keeps a private tally only — the
        no-double-count contract the process executor relies on."""
        fit = default_grid_force_fit()
        kernel = ShortRangeKernel(
            fit, spacing=1.0, mirror_counters=False
        )
        reg = Registry()
        with use(reg):
            kernel.accumulate(
                np.zeros((2, 3)), np.ones((3, 3)), np.ones(3)
            )
        assert kernel.interaction_count == 6
        assert reg.counter("pp.flops") == 0.0
        assert reg.counter("pp.bytes") == 0.0


class TestCICWork:
    @pytest.mark.parametrize(
        "dtype,itemsize", [(np.float64, 8), (np.float32, 4)]
    )
    def test_one_particle_deposit(self, dtype, itemsize):
        """One particle, one pass: 47 flops, 8 corners of traffic."""
        pos = np.array([[1.2, 3.4, 5.6]], dtype=dtype)
        reg = Registry()
        with use(reg):
            cic_deposit(pos, 8, 10.0, dtype=dtype)
        assert reg.counter("cic.flops") == 47.0
        assert reg.counter("cic.bytes") == 8 * (2 * itemsize + 8)

    def test_one_particle_gather(self):
        pos = np.array([[1.2, 3.4, 5.6]])
        grid = np.ones((8, 8, 8))
        reg = Registry()
        with use(reg):
            cic_interpolate(grid, pos, 10.0)
        assert reg.counter("cic.flops") == 47.0
        assert reg.counter("cic.bytes") == 8 * (2 * 8 + 8)

    def test_scales_linearly_with_particles(self, rng):
        pos = rng.uniform(0, 10.0, (250, 3))
        reg = Registry()
        with use(reg):
            cic_deposit(pos, 8, 10.0)
        assert reg.counter("cic.flops") == 47.0 * 250


class TestFFTWork:
    def test_4cubed_forward_transform(self):
        """A 4^3 = 64-point FFT: 5 * 64 * log2(64) = 1920 flops."""
        solver = SpectralPoissonSolver(4, 1.0)
        reg = Registry()
        with use(reg):
            solver._forward(np.zeros((4, 4, 4)))
        assert reg.counter("fft.flops") == 5.0 * 64 * 6 == 1920.0
        assert reg.counter("fft.bytes") == 2 * 16 * 64 * 6

    def test_f32_path_charges_complex64_traffic(self):
        solver = SpectralPoissonSolver(4, 1.0, dtype=np.float32)
        reg = Registry()
        with use(reg):
            solver._forward(np.zeros((4, 4, 4), dtype=np.float32))
        assert reg.counter("fft.flops") == 1920.0
        assert reg.counter("fft.bytes") == 2 * 8 * 64 * 6

    def test_filter_work_folds_into_fft_phase(self):
        solver = SpectralPoissonSolver(4, 1.0)
        reg = Registry()
        with use(reg):
            delta_k = solver._forward(np.zeros((4, 4, 4)))
            before = reg.counter("fft.flops")
            solver.potential_k(delta_k)
            after = reg.counter("fft.flops")
        # rfft layout: 4 * 4 * 3 points, 6 flops each
        assert after - before == 6.0 * delta_k.size

    def test_degenerate_sizes(self):
        assert perfcount.fft_flops(1) == 0.0
        assert perfcount.fft_bytes(0) == 0.0
        assert perfcount.fft_flops(64) == 1920.0

    def test_pencil_fft_charges_same_model(self):
        from repro.fft.pencil import PencilFFT

        pencil = PencilFFT(n=8, pr=2, pc=2)
        reg = Registry()
        with use(reg):
            blocks = pencil.scatter(np.zeros((8, 8, 8), dtype=complex))
            pencil.forward(blocks)
        assert reg.counter("fft.flops") == perfcount.fft_flops(8**3)


# ----------------------------------------------------------------------
# invariance of counted work
# ----------------------------------------------------------------------
class TestWorkInvariance:
    WORK_COUNTERS = (
        "pp.interactions", "pp.flops", "pp.bytes",
        "cic.flops", "cic.bytes", "fft.flops", "fft.bytes",
    )

    def _run_counters(self, **kwargs) -> dict:
        # construct outside the registry scope: IC generation and the
        # cached grid-force fit are setup, not stepped work
        sim = tiny_sim(**kwargs)
        reg = Registry()
        with use(reg):
            sim.run()
        return {k: reg.counter(k) for k in self.WORK_COUNTERS}

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_count_identical_work(self, executor):
        """Same config, same counted work — serial vs parallel fleets.

        The process backend ships worker-side counters back with the
        task results, so even tallies charged inside workers survive."""
        serial = self._run_counters()
        parallel = self._run_counters(executor=executor, workers=2)
        assert serial == parallel
        assert serial["pp.flops"] > 0

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
    def test_kernel_backends_count_identical_work(self):
        numpy_run = self._run_counters(kernel_backend="numpy")
        numba_run = self._run_counters(kernel_backend="numba")
        assert numpy_run == numba_run

    def test_precision_halves_pair_bytes_only(self):
        f64 = self._run_counters()
        f32 = self._run_counters(dtype="f32")
        assert f32["pp.flops"] == f64["pp.flops"]
        assert f32["pp.bytes"] == f64["pp.bytes"] / 2
        assert f32["cic.flops"] == f64["cic.flops"]


# ----------------------------------------------------------------------
# phase aggregation and the roofline table
# ----------------------------------------------------------------------
def _cal(peak=100.0, stream=10.0) -> HostCalibration:
    return HostCalibration(
        peak_gflops=peak,
        stream_gbs=stream,
        fingerprint="test",
        measured_unix=0.0,
    )


class TestPhaseAggregation:
    SUMMARY = {
        "sections": {
            "step": {"calls": 2, "seconds": 2.0},
            "pp.kernel": {"calls": 4, "seconds": 1.0},
            "cic.deposit": {"calls": 2, "seconds": 0.25},
            "cic.interpolate": {"calls": 6, "seconds": 0.25},
            "fft.forward": {"calls": 2, "seconds": 0.5},
        },
        "counters": {
            "pp.flops": 21e9,
            "pp.bytes": 32e9,
            "cic.flops": 47e8,
            "cic.bytes": 1e9,
            "fft.flops": 5e9,
            "fft.bytes": 2e9,
            "comm.bytes": 4e9,
        },
    }

    def test_work_summary_from_saved_dict(self):
        phases = {p.name: p for p in work_summary(self.SUMMARY)}
        assert phases["shortrange"].gflops == pytest.approx(21.0)
        assert phases["shortrange"].arithmetic_intensity == pytest.approx(
            21 / 32
        )
        assert phases["cic"].seconds == pytest.approx(0.5)
        # comm has no span of its own: volume against stepped time
        assert phases["comm"].seconds == pytest.approx(2.0)
        assert phases["comm"].flops == 0.0

    def test_live_registry_and_dict_agree(self):
        reg = Registry()
        with use(reg):
            tiny_sim().run()
        live = {p.name: p for p in work_summary(reg)}
        saved = {
            p.name: p
            for p in work_summary(
                {
                    "sections": reg.section_totals(),
                    "counters": reg.counters,
                }
            )
        }
        assert live == saved
        assert live["shortrange"].flops > 0

    def test_achieved_gflops(self):
        assert achieved_gflops(self.SUMMARY) == pytest.approx(
            (21e9 + 47e8 + 5e9) / 2.0 / 1e9
        )
        assert achieved_gflops({"sections": {}, "counters": {}}) is None

    def test_step_perf(self):
        rec = StepRecord(
            index=0,
            wall_time=0.5,
            sections={"pp.kernel": 0.25},
            calls={"pp.kernel": 1},
            counters={
                "pp.flops": 21e6,
                "pp.bytes": 32e6,
                "pp.interactions": 1e6,
            },
        )
        perf = step_perf(rec)
        assert perf["gflops"] == pytest.approx(0.042)
        assert perf["ai"] == pytest.approx(21 / 32)
        assert perf["pair_ns"] == pytest.approx(250.0)

    def test_step_perf_without_work(self):
        rec = StepRecord(
            index=0, wall_time=0.5, sections={}, calls={}, counters={}
        )
        assert step_perf(rec) is None

    def test_phasework_edge_cases(self):
        pure = PhaseWork(name="x", seconds=1.0, flops=10.0, bytes=0.0)
        assert pure.arithmetic_intensity == float("inf")
        assert pure.bound_by(1.0) == "compute"
        assert pure.to_dict()["arithmetic_intensity"] is None
        comm = PhaseWork(name="c", seconds=1.0, flops=0.0, bytes=8.0)
        assert comm.bound_by(1.0) == "comm"

    def test_roofline_table_and_render(self):
        phases = work_summary(self.SUMMARY)
        table = roofline_table(phases, _cal())
        rows = {r["name"]: r for r in table["phases"]}
        assert rows["shortrange"]["frac_peak"] == pytest.approx(0.21)
        # AI 21/32 < balance 10 flops/byte: memory-bound on this host
        assert rows["shortrange"]["bound_by"] == "memory"
        # total time excludes the comm pseudo-phase (it spans the step)
        assert table["total"]["seconds"] == pytest.approx(2.0)
        # the paper's Section IV.B model point rides along
        assert table["model"]["frac_peak"] == pytest.approx(
            0.695, abs=0.005
        )
        text = render_roofline(table)
        assert "paper model" in text
        assert "shortrange" in text and "% peak" in text


# ----------------------------------------------------------------------
# host calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_measures_and_caches(self, tmp_path):
        cal = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        assert cal.peak_gflops > 0
        assert cal.stream_gbs > 0
        assert cal.balance() == pytest.approx(
            cal.peak_gflops / cal.stream_gbs
        )
        assert cal.fingerprint == host_fingerprint()
        assert (tmp_path / "calibration.json").is_file()
        again = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        assert again == cal  # served from the cache, not re-measured

    def test_force_remeasures(self, tmp_path):
        cal = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        forced = calibrate(
            root=tmp_path, force=True, matmul_n=64, stream_n=20000
        )
        assert forced.measured_unix >= cal.measured_unix

    def test_stale_fingerprint_remeasures(self, tmp_path):
        cal = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        path = tmp_path / "calibration.json"
        stale = json.loads(path.read_text())
        stale["fingerprint"] = "some-other-host"
        path.write_text(json.dumps(stale))
        fresh = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        assert fresh.fingerprint == cal.fingerprint

    def test_corrupt_cache_recovers(self, tmp_path):
        (tmp_path / "calibration.json").write_text("{not json")
        cal = calibrate(root=tmp_path, matmul_n=64, stream_n=20000)
        assert cal.peak_gflops > 0


# ----------------------------------------------------------------------
# wiring: ledger, telemetry, dashboard, provenance
# ----------------------------------------------------------------------
class TestWiring:
    def test_run_entry_gflops_roundtrip(self):
        entry = RunEntry(run_id="r", created_unix=0.0, gflops=1.25)
        assert RunEntry.from_dict(entry.to_dict()).gflops == 1.25

    def test_ledger_records_gflops(self, tmp_path):
        from repro.instrument.store import RunLedger

        reg = Registry()
        sim = tiny_sim()
        with use(reg):
            sim.run()
        ledger = RunLedger(tmp_path)
        entry = ledger.record(registry=reg)
        assert entry.gflops is not None and entry.gflops > 0
        summary = ledger.load_registry(entry)
        assert achieved_gflops(summary) == pytest.approx(entry.gflops)

    def test_step_telemetry_perf_serialization(self):
        step = StepTelemetry(
            index=0, a=0.5, wall_time=0.1, gauges={}, imbalance={},
            residuals={}, alerts=(), perf={"pair_ns": 420.0},
        )
        assert step.to_dict()["perf"] == {"pair_ns": 420.0}
        bare = StepTelemetry(
            index=0, a=0.5, wall_time=0.1, gauges={}, imbalance={},
            residuals={}, alerts=(),
        )
        assert "perf" not in bare.to_dict()

    def test_simulation_flushes_perf_into_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        reg = Registry()
        sim = tiny_sim()
        with RunStream(path) as stream, use(reg), use_telemetry(
            Telemetry(stream=stream)
        ):
            sim.run()
        steps = [
            rec
            for rec in map(json.loads, path.read_text().splitlines())
            if rec.get("kind") == "telemetry"
        ]
        assert steps, "no step records in the stream"
        assert all("perf" in s for s in steps)
        assert steps[-1]["perf"]["gflops"] > 0
        assert steps[-1]["perf"]["pair_ns"] > 0

    def test_dashboard_kernel_and_pair_ns_columns(self):
        data = {
            "manifest": {
                "config_hash": "abc123", "n_steps": 4,
                "kernel_backend": "numpy", "precision": "f32",
            },
            "steps": [
                {"wall_time": 0.1, "z": 10.0,
                 "perf": {"pair_ns": 812.3}},
            ],
            "end": None,
        }
        text = render_dashboard([("demo", data)])
        assert "kernel" in text and "ns/pair" in text
        assert "numpy/f32" in text
        assert "812" in text

    def test_dashboard_without_perf_shows_dash(self):
        data = {"manifest": {}, "steps": [{"wall_time": 0.1}],
                "end": None}
        text = render_dashboard([("demo", data)])
        assert "numpy" not in text

    def test_bench_provenance_notes(self):
        mismatched = {
            "kernels": {"payload": {"numba_available": not HAVE_NUMBA}}
        }
        notes = bench_provenance_notes(mismatched)
        assert len(notes) == 1
        assert "PROVENANCE MISMATCH" in notes[0]
        matched = {
            "kernels": {"payload": {"numba_available": HAVE_NUMBA}},
            "flagless": {"payload": {"duration_s": 1.0}},
        }
        assert bench_provenance_notes(matched) == []


# ----------------------------------------------------------------------
# zero-overhead guard
# ----------------------------------------------------------------------
class _TallyRegistry(NullRegistry):
    """NullRegistry that counts how often the hot paths call into it."""

    def __init__(self) -> None:
        self.calls = 0

    def span(self, name, rank=0):
        self.calls += 1
        return super().span(name, rank)

    def count(self, name, value=1):
        self.calls += 1


class TestZeroOverhead:
    """Disabled instrumentation must be within noise of no instrumentation.

    A direct paired timing of "instrumented but disabled" vs "physically
    un-instrumented" is impossible (the calls are compiled in) and a
    wall-clock A/B is noise-bound, so the guard is analytic: count every
    registry call a demo run makes, measure the true per-call cost of
    the disabled registry, and bound the product against the run's wall
    time.  The bound is the *maximum* the instrumentation can cost with
    the registry and telemetry off.
    """

    def test_disabled_instrumentation_within_noise(self):
        tally = _TallyRegistry()
        sim = tiny_sim()
        with use(tally):
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
        assert tally.calls > 0, "demo run never touched the registry"

        null = NullRegistry()
        reps = 200_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with null.span("x"):
                pass
            null.count("x", 1)
        per_call = (time.perf_counter() - t0) / (2 * reps)

        overhead = tally.calls * per_call
        assert overhead < 0.10 * wall, (
            f"{tally.calls} disabled registry calls x {per_call:.2e}s "
            f"= {overhead:.4f}s exceeds 10% of the {wall:.4f}s run"
        )

    def test_null_span_is_cheap_in_absolute_terms(self):
        null = NullRegistry()
        reps = 100_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with null.span("x"):
                pass
        per_span = (time.perf_counter() - t0) / reps
        # generous ceiling: a no-op span must stay in sub-microsecond
        # territory (interpreter noise included), not milliseconds
        assert per_span < 2e-5
