"""Tests for the production pipeline driver and the torus mapping
analysis."""

import numpy as np
import pytest

from repro import HACCSimulation, SimulationConfig
from repro.core.pipeline import ProductSchedule, SimulationPipeline
from repro.io.snapshots import load_power_history, load_snapshot
from repro.machine.mapping import MappingAnalysis
from repro.parallel.topology import TorusTopology


def small_sim(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=1.0,
        n_steps=6,
        backend="pm",
        seed=3,
        step_spacing="loga",
    )
    base.update(kwargs)
    return HACCSimulation(SimulationConfig(**base))


class TestProductSchedule:
    def test_defaults_empty(self):
        s = ProductSchedule()
        assert s.power_redshifts == ()
        assert not s.track_energy

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(snapshot_subsample=0),
            dict(power_grid_factor=0),
            dict(power_redshifts=(-1.0,)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProductSchedule(**kwargs)


class TestSimulationPipeline:
    def test_power_spectra_produced_and_saved(self, tmp_path):
        pipe = SimulationPipeline(
            small_sim(),
            ProductSchedule(power_redshifts=(5.0, 2.0, 1.0)),
            tmp_path,
        )
        pipe.run()
        assert len(pipe.power_spectra) == 3
        # capture redshifts are at-or-below the labels, in order
        assert all(
            a >= b for a, b in zip(pipe.power_redshifts, pipe.power_redshifts[1:])
        )
        z, records = load_power_history(tmp_path / "power_history.npz")
        assert len(records) == 3
        assert np.allclose(z, pipe.power_redshifts)

    def test_snapshots_written(self, tmp_path):
        pipe = SimulationPipeline(
            small_sim(),
            ProductSchedule(
                snapshot_redshifts=(3.0,), snapshot_subsample=2
            ),
            tmp_path,
        )
        pipe.run()
        assert len(pipe.snapshot_paths) == 1
        parts, a, meta = load_snapshot(pipe.snapshot_paths[0])
        assert parts.n == 8**3 // 2
        assert meta["z_label"] == 3.0
        assert 0 < a <= 1.0

    def test_energy_tracking(self, tmp_path):
        pipe = SimulationPipeline(
            small_sim(n_per_dim=12),
            ProductSchedule(track_energy=True),
            tmp_path,
        )
        pipe.run()
        summary = pipe.summary()
        assert "energy_residual" in summary
        assert abs(summary["energy_residual"]) < 0.25

    def test_summary_contents(self, tmp_path):
        pipe = SimulationPipeline(
            small_sim(), ProductSchedule(power_redshifts=(1.0,)), tmp_path
        )
        pipe.run()
        s = pipe.summary()
        assert s["final_redshift"] == pytest.approx(1.0, abs=1e-9)
        assert s["n_power_spectra"] == 1
        assert s["n_snapshots"] == 0

    def test_no_products_no_files(self, tmp_path):
        pipe = SimulationPipeline(small_sim(), ProductSchedule(), tmp_path)
        pipe.run()
        assert list(tmp_path.iterdir()) == []

    def test_oversampled_power_grid(self, tmp_path):
        pipe = SimulationPipeline(
            small_sim(),
            ProductSchedule(power_redshifts=(1.0,), power_grid_factor=2),
            tmp_path,
        )
        pipe.run()
        # 2x grid -> twice as many k bins as the force grid would give
        assert len(pipe.power_spectra[0].k) == 8  # (2*8)//2


class TestMappingAnalysis:
    def test_linear_rows_compact_columns_spread(self):
        """The naive mapping's signature: row communicators cheap,
        column communicators near the machine mean."""
        m = MappingAnalysis(16, 8, ranks_per_node=4)
        hops = m.subset_hops("linear")
        assert hops["row_mean_hops"] < hops["col_mean_hops"]
        assert hops["col_mean_hops"] > 0.7 * hops["machine_mean_hops"]

    def test_blocked_balances_families(self):
        m = MappingAnalysis(16, 8, ranks_per_node=4)
        hops = m.subset_hops("blocked")
        assert hops["row_mean_hops"] == pytest.approx(
            hops["col_mean_hops"], rel=0.5
        )

    def test_blocked_improves_worst_family(self):
        """The paper's 'reduction in communication hotspots' requires a
        locality-aware mapping; blocking beats linear on the worst
        communicator family."""
        for pr, pc in ((8, 8), (16, 8), (16, 16)):
            m = MappingAnalysis(pr, pc, ranks_per_node=4)
            assert m.locality_advantage() > 1.2

    def test_subset_hops_below_machine_mean(self):
        """Both communicator families stay below random-pair distance
        under the blocked mapping — the subset-locality assumption of
        the FFT comm model."""
        m = MappingAnalysis(16, 16, ranks_per_node=4)
        hops = m.subset_hops("blocked")
        assert hops["worst_family_hops"] < hops["machine_mean_hops"]

    def test_single_node_all_zero(self):
        m = MappingAnalysis(
            2, 2, ranks_per_node=4, torus=TorusTopology((1,))
        )
        hops = m.subset_hops("linear")
        assert hops["worst_family_hops"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MappingAnalysis(0, 4)
        with pytest.raises(ValueError):
            MappingAnalysis(4, 4, ranks_per_node=0)
        m = MappingAnalysis(4, 4)
        with pytest.raises(ValueError):
            m.node_of_rank(9, 0, "linear")
        with pytest.raises(ValueError):
            m.node_of_rank(0, 0, "random")
