"""Tests for the 3-D block domain decomposition and torus topology."""

import numpy as np
import pytest

from repro.parallel.decomposition import DomainDecomposition, balanced_dims
from repro.parallel.topology import TorusTopology


class TestBalancedDims:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1, 1)), (8, (2, 2, 2)), (512, (8, 8, 8)), (2048, (16, 16, 8))],
    )
    def test_products_and_balance(self, n, expected):
        dims = balanced_dims(n)
        assert np.prod(dims) == n
        assert dims == expected

    def test_five_dims(self):
        dims = balanced_dims(1024, ndim=5)
        assert np.prod(dims) == 1024
        assert max(dims) / min(dims) <= 2

    def test_prime_count(self):
        assert sorted(balanced_dims(7), reverse=True) == [7, 1, 1]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            balanced_dims(0)


class TestDomainDecomposition:
    def test_rank_coords_roundtrip(self):
        d = DomainDecomposition(100.0, (4, 3, 2))
        for r in range(d.n_ranks):
            assert d.rank_of_coords(d.coords_of_rank(r)) == r

    def test_periodic_coords_wrap(self):
        d = DomainDecomposition(100.0, (2, 2, 2))
        assert d.rank_of_coords((-1, 0, 0)) == d.rank_of_coords((1, 0, 0))
        assert d.rank_of_coords((2, 0, 0)) == d.rank_of_coords((0, 0, 0))

    def test_bounds_tile_the_box(self):
        d = DomainDecomposition(60.0, (3, 2, 1))
        total = 0.0
        for r in range(d.n_ranks):
            lo, hi = d.bounds(r)
            total += np.prod(hi - lo)
        assert total == pytest.approx(60.0**3)

    def test_noncubic_widths(self):
        """Table II uses non-cubic geometries like 16x8x16."""
        d = DomainDecomposition(1814.0, (16, 8, 16))
        w = d.widths
        assert w[0] == pytest.approx(1814.0 / 16)
        assert w[1] == pytest.approx(1814.0 / 8)

    def test_assign_matches_bounds(self, rng):
        d = DomainDecomposition(50.0, (2, 3, 2))
        pos = rng.uniform(0, 50.0, (500, 3))
        ranks = d.assign(pos)
        for r in range(d.n_ranks):
            lo, hi = d.bounds(r)
            sel = ranks == r
            if np.any(sel):
                assert np.all(pos[sel] >= lo - 1e-12)
                assert np.all(pos[sel] < hi + 1e-12)

    def test_assign_wraps_positions(self):
        d = DomainDecomposition(10.0, (2, 1, 1))
        out = d.assign(np.array([[10.0, 0.0, 0.0], [-0.5, 0.0, 0.0]]))
        assert out[0] == 0
        assert out[1] == 1  # -0.5 wraps to 9.5, in the upper block

    def test_neighbor_ranks_count(self):
        d = DomainDecomposition(10.0, (3, 3, 3))
        assert len(d.neighbor_ranks(13)) == 26

    def test_neighbor_ranks_small_grid_dedup(self):
        d = DomainDecomposition(10.0, (2, 1, 1))
        assert d.neighbor_ranks(0) == [1]

    def test_from_rank_count(self):
        d = DomainDecomposition.from_rank_count(100.0, 32)
        assert d.n_ranks == 32

    def test_overload_volume_factor(self):
        d = DomainDecomposition(100.0, (2, 2, 2))
        # widths 50; depth 5: (60/50)^3 = 1.728
        assert d.overload_volume_factor(5.0) == pytest.approx(1.728)

    def test_overload_factor_zero_depth(self):
        d = DomainDecomposition(100.0, (2, 2, 2))
        assert d.overload_volume_factor(0.0) == 1.0

    def test_overload_factor_depth_too_large(self):
        d = DomainDecomposition(100.0, (4, 4, 4))
        with pytest.raises(ValueError):
            d.overload_volume_factor(13.0)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(box_size=0.0, dims=(2, 2, 2)), dict(box_size=10.0, dims=(0, 2, 2))],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            DomainDecomposition(**kwargs)


class TestTorusTopology:
    def test_node_count(self):
        assert TorusTopology((4, 4, 4, 8, 2)).n_nodes == 1024

    def test_links_per_node_bgq(self):
        # a full 5-D torus with all extents > 2 has 10 links
        assert TorusTopology((4, 4, 4, 4, 4)).n_links_per_node == 10

    def test_links_extent_two_collapses(self):
        assert TorusTopology((2, 2)).n_links_per_node == 2

    def test_coords_roundtrip(self):
        t = TorusTopology((3, 4, 5))
        for node in (0, 7, 59):
            assert t.node_of(t.coords(node)) == node

    def test_hops_symmetric_and_wrapping(self):
        t = TorusTopology((8,))
        assert t.hops(0, 7) == 1  # wraps around
        assert t.hops(0, 4) == 4
        assert t.hops(3, 5) == t.hops(5, 3)

    def test_diameter_explicit(self):
        # floor(4/2)*3 + floor(8/2) + floor(2/2) = 6 + 4 + 1 = 11
        assert TorusTopology((4, 4, 4, 8, 2)).diameter == 11

    def test_average_hops_closed_form(self):
        t = TorusTopology((4,))
        # exhaustive mean over pairs: distances {0,1,2,1} -> mean 1
        dists = [t.hops(0, b) for b in range(4)]
        assert np.mean(dists) == pytest.approx(t.average_hops())

    def test_bisection_links(self):
        # 4x4 torus: cut the longest dim (4) at two planes: 2 * 16/4 = 8
        assert TorusTopology((4, 4)).bisection_links() == 8

    def test_bisection_extent_two(self):
        assert TorusTopology((2, 2)).bisection_links() == 2

    def test_alltoall_time_scales_with_bytes(self):
        t = TorusTopology((4, 4))
        t1 = t.alltoall_time(1e6, 1e9)
        t2 = t.alltoall_time(2e6, 1e9)
        assert t2 == pytest.approx(2 * t1)

    def test_alltoall_validation(self):
        t = TorusTopology((4, 4))
        with pytest.raises(ValueError):
            t.alltoall_time(-1, 1e9)
        with pytest.raises(ValueError):
            t.alltoall_time(1, 0)

    def test_balanced_factory(self):
        t = TorusTopology.balanced(1024, ndim=5)
        assert t.n_nodes == 1024

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TorusTopology((0, 4))
