"""Tests for correlation functions and Limber lensing spectra."""

import numpy as np
import pytest

from repro.analysis.correlation import pair_correlation, xi_from_power
from repro.analysis.lensing import convergence_power, lensing_efficiency
from repro.cosmology import WMAP7
from repro.cosmology.halofit import HalofitPower


class TestXiFromPower:
    def test_positive_at_small_r(self, linear_power):
        assert xi_from_power(linear_power, 5.0) > 0

    def test_decreasing_with_r(self, linear_power):
        xi = xi_from_power(linear_power, np.array([2.0, 8.0, 30.0]))
        assert xi[0] > xi[1] > xi[2] > 0

    def test_unity_crossing_scale(self, linear_power):
        """xi = 1 near r ~ 5-6 Mpc/h for sigma8 = 0.8 (the classic
        correlation length is ~5 Mpc/h in linear theory)."""
        r = np.linspace(2.0, 12.0, 30)
        xi = xi_from_power(linear_power, r)
        r0 = r[np.argmin(np.abs(xi - 1.0))]
        assert 3.0 < r0 < 9.0

    @pytest.mark.slow
    def test_bao_bump(self, linear_power):
        """The acoustic feature appears near 105 Mpc/h: xi has a local
        maximum between 90 and 120 Mpc/h (BOSS-era science — the paper's
        Roadrunner runs targeted exactly this)."""
        r = np.linspace(70.0, 140.0, 36)
        xi = xi_from_power(linear_power, r)
        interior = xi[1:-1]
        peaks = np.flatnonzero(
            (interior > xi[:-2]) & (interior > xi[2:])
        )
        assert peaks.size >= 1
        r_peak = r[1:-1][peaks[0]]
        assert 90.0 < r_peak < 120.0

    @pytest.mark.slow
    def test_growth_scaling(self, linear_power):
        d = WMAP7.growth_factor(0.5)
        xi_now = xi_from_power(linear_power, 10.0, 1.0)
        xi_then = xi_from_power(linear_power, 10.0, 0.5)
        assert xi_then == pytest.approx(xi_now * d * d, rel=1e-4)

    def test_invalid_r(self, linear_power):
        with pytest.raises(ValueError):
            xi_from_power(linear_power, 0.0)


class TestPairCorrelation:
    def test_random_is_uncorrelated(self, rng):
        pos = rng.uniform(0, 50.0, (8000, 3))
        cf = pair_correlation(pos, 50.0, r_min=1.0, r_max=10.0, n_bins=6)
        assert np.all(np.abs(cf.xi) < 0.2)

    def test_clustered_has_positive_xi(self, rng):
        centers = rng.uniform(0, 50.0, (30, 3))
        pos = np.mod(
            np.repeat(centers, 100, axis=0)
            + 0.5 * rng.standard_normal((3000, 3)),
            50.0,
        )
        cf = pair_correlation(pos, 50.0, r_min=0.2, r_max=5.0, n_bins=6)
        assert cf.xi[0] > 10.0
        assert cf.xi[0] > cf.xi[-1]

    def test_pair_counts_total(self, rng):
        """Sum of DD over all bins equals brute-force pair count in range."""
        pos = rng.uniform(0, 20.0, (200, 3))
        cf = pair_correlation(pos, 20.0, r_min=0.5, r_max=8.0, n_bins=5)
        d = pos[:, None, :] - pos[None, :, :]
        d -= 20.0 * np.round(d / 20.0)
        r = np.sqrt((d**2).sum(-1))
        iu = np.triu_indices(200, k=1)
        brute = np.count_nonzero((r[iu] >= 0.5) & (r[iu] < 8.0))
        assert cf.pair_counts.sum() == brute

    def test_linear_bins(self, rng):
        pos = rng.uniform(0, 20.0, (500, 3))
        cf = pair_correlation(
            pos, 20.0, r_min=1.0, r_max=6.0, n_bins=5, log_bins=False
        )
        assert len(cf.r) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(r_min=0.0),
            dict(r_max=15.0),  # > box/2
            dict(r_min=5.0, r_max=2.0),
        ],
    )
    def test_validation(self, rng, kwargs):
        pos = rng.uniform(0, 20.0, (50, 3))
        with pytest.raises(ValueError):
            pair_correlation(pos, 20.0, **kwargs)


class TestLensing:
    def test_efficiency_shape(self):
        """W(chi) vanishes at observer and source, peaks between."""
        chi_s = WMAP7.comoving_distance(1.0)
        w0 = lensing_efficiency(WMAP7, 0.0, chi_s)
        ws = lensing_efficiency(WMAP7, chi_s, chi_s)
        wm = lensing_efficiency(WMAP7, 0.45 * chi_s, chi_s)
        assert w0 == 0.0
        assert ws == pytest.approx(0.0, abs=1e-12)
        assert wm > 0

    def test_convergence_power_positive_and_smooth(self, linear_power):
        ells = np.array([100.0, 300.0, 1000.0])
        c = convergence_power(linear_power, ells, z_source=1.0)
        assert np.all(c > 0)

    def test_amplitude_order_of_magnitude(self, linear_power):
        """ell(ell+1) C_ell / 2pi ~ 1e-5..1e-4 at ell ~ 1000 for z_s=1 —
        the standard cosmic-shear band."""
        ell = 1000.0
        c = convergence_power(linear_power, ell, z_source=1.0)
        band = ell * (ell + 1) * c / (2 * np.pi)
        assert 1e-6 < band < 1e-3

    def test_deeper_sources_lensed_more(self, linear_power):
        ell = np.array([500.0])
        shallow = convergence_power(linear_power, ell, z_source=0.5)
        deep = convergence_power(linear_power, ell, z_source=1.5)
        assert deep[0] > shallow[0]

    @pytest.mark.slow
    def test_nonlinear_boost_at_high_ell(self, linear_power):
        """HALOFIT raises the convergence power at small angular scales
        — the accuracy-critical regime from Section I."""
        nl = HalofitPower(linear_power)
        ell = np.array([3000.0])
        lin = convergence_power(linear_power, ell, z_source=1.0)
        boosted = convergence_power(nl, ell, z_source=1.0)
        assert boosted[0] > 1.5 * lin[0]

    def test_quadrature_converged(self, linear_power):
        ell = np.array([500.0])
        a = convergence_power(linear_power, ell, z_source=1.0, n_chi=32)
        b = convergence_power(linear_power, ell, z_source=1.0, n_chi=96)
        assert a[0] == pytest.approx(b[0], rel=5e-3)

    def test_validation(self, linear_power):
        with pytest.raises(ValueError):
            convergence_power(linear_power, 100.0, z_source=0.0)
        with pytest.raises(ValueError):
            convergence_power(linear_power, np.array([-10.0]))
