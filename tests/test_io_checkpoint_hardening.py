"""Tests for the hardened checkpoint layer (``repro.io.checkpoint``).

Suffix normalization, CRC32C checksums, typed load errors (foreign
files, future versions), crash-mid-write torn files, rotation fallback,
scheduling, and atomic publication.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.io import (
    CheckpointError,
    Checkpointer,
    CheckpointSchedule,
    crc32c,
    find_latest_valid,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)


def tiny_sim(n_steps: int = 2, **overrides) -> HACCSimulation:
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=20.0,
        z_final=10.0,
        n_steps=n_steps,
        backend="pm",
        seed=5,
    )
    base.update(overrides)
    return HACCSimulation(SimulationConfig(**base))


class TestCRC32C:
    def test_known_vector(self):
        # the canonical CRC32C check value (RFC 3720 appendix)
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c(b"") == 0

    def test_array_matches_its_bytes(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert crc32c(arr) == crc32c(arr.tobytes())

    def test_sensitive_to_single_bit(self):
        data = bytearray(b"hello checkpoint")
        before = crc32c(bytes(data))
        data[5] ^= 0x01
        assert crc32c(bytes(data)) != before


class TestSuffixHandling:
    """Regression tests for the ``with_suffix`` fix: plain names gain
    ``.npz``, existing ``.npz`` (any case) is normalized not doubled,
    and dotted science names keep their full stem."""

    def test_plain_name_gains_suffix(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ckpt", sim)
        assert path == tmp_path / "ckpt.npz"
        assert path.exists()

    def test_existing_suffix_not_doubled(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ckpt.npz", sim)
        assert path == tmp_path / "ckpt.npz"

    def test_uppercase_suffix_normalized(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ckpt.NPZ", sim)
        assert path == tmp_path / "ckpt.npz"

    def test_dotted_stem_survives(self, tmp_path):
        # with_suffix alone would truncate "z0.5" to "z0.npz"
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "z0.5", sim)
        assert path == tmp_path / "z0.5.npz"
        load_checkpoint(path)  # round-trips

    def test_load_roundtrip_preserves_state(self, tmp_path):
        sim = tiny_sim()
        sim.step()
        path = save_checkpoint(tmp_path / "mid", sim)
        restored = load_checkpoint(path)
        assert np.array_equal(
            restored.particles.positions, sim.particles.positions
        )
        assert np.array_equal(
            restored.particles.momenta, sim.particles.momenta
        )
        assert restored.a == sim.a
        assert restored._step_index == sim._step_index
        assert restored.config == sim.config


class TestTypedErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(tmp_path / "nope.npz")
        assert exc.value.path == tmp_path / "nope.npz"

    def test_foreign_npz_reports_found_keys(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, alpha=np.arange(3), beta=np.ones(2))
        with pytest.raises(CheckpointError) as exc:
            load_checkpoint(path)
        msg = str(exc.value)
        assert "metadata" in msg
        assert "alpha" in msg and "beta" in msg

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_future_format_version_rejected(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ok", sim)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "metadata"}
            meta = json.loads(str(data["metadata"]))
        meta["format_version"] = 99
        np.savez(
            tmp_path / "future.npz",
            metadata=json.dumps(meta),
            **arrays,
        )
        with pytest.raises(CheckpointError, match="newer"):
            load_checkpoint(tmp_path / "future.npz")

    def test_missing_version_rejected(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ok", sim)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "metadata"}
            meta = json.loads(str(data["metadata"]))
        del meta["format_version"]
        np.savez(
            tmp_path / "nover.npz", metadata=json.dumps(meta), **arrays
        )
        with pytest.raises(CheckpointError, match="format_version"):
            load_checkpoint(tmp_path / "nover.npz")

    def test_checksum_mismatch_detected(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ok", sim)
        with np.load(path) as data:
            arrays = {k: np.array(data[k]) for k in data.files
                      if k != "metadata"}
            meta = json.loads(str(data["metadata"]))
        # corrupt one array *after* the manifest was recorded
        arrays["momenta"] = arrays["momenta"] + 1e-8
        np.savez(
            tmp_path / "rot.npz", metadata=json.dumps(meta), **arrays
        )
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(tmp_path / "rot.npz")

    def test_verify_returns_metadata(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "ok", sim)
        meta = verify_checkpoint(path)
        assert meta["format_version"] == 2
        assert set(meta["checksums"]) == {
            "positions", "momenta", "masses", "ids", "a",
        }


class TestCrashMidWrite:
    """A crash can tear the file at any byte: every truncation point
    must surface as CheckpointError, never as garbage physics."""

    @pytest.mark.parametrize("frac", [0.0, 0.1, 0.5, 0.9, 0.999])
    def test_truncation_always_detected(self, tmp_path, frac):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "torn", sim)
        size = path.stat().st_size
        keep = max(1, int(size * frac))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bitflips_detected(self, tmp_path):
        sim = tiny_sim()
        path = save_checkpoint(tmp_path / "flip", sim)
        size = path.stat().st_size
        raw = bytearray(path.read_bytes())
        hits = 0
        for offset in (size // 4, size // 2, (3 * size) // 4):
            corrupted = bytearray(raw)
            corrupted[offset] ^= 0x10
            path.write_bytes(bytes(corrupted))
            try:
                load_checkpoint(path)
            except CheckpointError:
                hits += 1
        # zip-member CRCs plus the array manifest catch payload flips
        assert hits == 3

    def test_no_temp_litter_after_save(self, tmp_path):
        sim = tiny_sim()
        save_checkpoint(tmp_path / "clean", sim)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["clean.npz"]


class TestRotationFallback:
    def _write_rotation(self, tmp_path, n=3):
        sim = tiny_sim(n_steps=n)
        ck = Checkpointer(tmp_path, keep_last=n)
        paths = []
        for _ in range(n):
            sim.step()
            paths.append(ck.maybe_checkpoint(sim))
        return sim, paths

    def test_latest_valid_is_newest(self, tmp_path):
        _, paths = self._write_rotation(tmp_path)
        assert find_latest_valid(tmp_path) == paths[-1]

    @pytest.mark.parametrize("frac", [0.05, 0.5, 0.95])
    def test_falls_back_past_torn_newest(self, tmp_path, frac):
        _, paths = self._write_rotation(tmp_path)
        size = paths[-1].stat().st_size
        with open(paths[-1], "r+b") as fh:
            fh.truncate(max(1, int(size * frac)))
        assert find_latest_valid(tmp_path) == paths[-2]

    def test_falls_back_two_generations(self, tmp_path):
        _, paths = self._write_rotation(tmp_path)
        for p in paths[-2:]:
            with open(p, "r+b") as fh:
                fh.truncate(10)
        assert find_latest_valid(tmp_path) == paths[0]

    def test_none_when_all_corrupt(self, tmp_path):
        _, paths = self._write_rotation(tmp_path)
        for p in paths:
            p.write_bytes(b"gone")
        assert find_latest_valid(tmp_path) is None

    def test_none_for_missing_directory(self, tmp_path):
        assert find_latest_valid(tmp_path / "absent") is None

    def test_foreign_files_ignored(self, tmp_path):
        _, paths = self._write_rotation(tmp_path)
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "ckpt_zzz.npz").write_bytes(b"not matching")
        assert find_latest_valid(tmp_path) == paths[-1]

    def test_keep_last_prunes_oldest(self, tmp_path):
        sim = tiny_sim(n_steps=5)
        ck = Checkpointer(tmp_path, keep_last=2)
        for _ in range(5):
            sim.step()
            ck.maybe_checkpoint(sim)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt_000004.npz", "ckpt_000005.npz"]
        assert ck.n_written == 5


class TestCheckpointSchedule:
    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            CheckpointSchedule()

    def test_every_steps(self):
        s = CheckpointSchedule(every_steps=3)
        assert [s.due(i) for i in range(1, 8)] == [
            False, False, True, False, False, True, False,
        ]

    def test_every_seconds_with_fake_clock(self):
        t = {"now": 0.0}
        s = CheckpointSchedule(every_seconds=10.0, clock=lambda: t["now"])
        t["now"] = 5.0
        assert not s.due(1)
        t["now"] = 11.0
        assert s.due(2)
        s.wrote()
        t["now"] = 15.0
        assert not s.due(3)

    def test_either_trigger_fires(self):
        t = {"now": 0.0}
        s = CheckpointSchedule(
            every_steps=100, every_seconds=1.0, clock=lambda: t["now"]
        )
        t["now"] = 2.0
        assert s.due(1)  # wall clock fired long before step 100

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointSchedule(every_steps=0)
        with pytest.raises(ValueError):
            CheckpointSchedule(every_seconds=0.0)


class TestCheckpointerDriver:
    def test_run_with_checkpointer_writes_final(self, tmp_path):
        sim = tiny_sim(n_steps=3)
        ck = Checkpointer(
            tmp_path, schedule=CheckpointSchedule(every_steps=2)
        )
        sim.run(checkpointer=ck)
        names = sorted(p.name for p in tmp_path.iterdir())
        # step 2 by schedule, step 3 forced at end of run
        assert names == ["ckpt_000002.npz", "ckpt_000003.npz"]

    def test_final_step_not_written_twice(self, tmp_path):
        sim = tiny_sim(n_steps=2)
        ck = Checkpointer(
            tmp_path, schedule=CheckpointSchedule(every_steps=1)
        )
        sim.run(checkpointer=ck)
        assert ck.n_written == 2  # steps 1 and 2, no duplicate final

    def test_resume_is_bitwise_identical(self, tmp_path):
        ref = tiny_sim(n_steps=4)
        ref.run()

        sim = tiny_sim(n_steps=4)
        ck = Checkpointer(tmp_path)
        sim.step()
        sim.step()
        ck.maybe_checkpoint(sim)

        resumed = load_checkpoint(find_latest_valid(tmp_path))
        resumed.run()
        assert np.array_equal(
            resumed.particles.positions, ref.particles.positions
        )
        assert np.array_equal(
            resumed.particles.momenta, ref.particles.momenta
        )
        assert resumed.a == ref.a

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, keep_last=0)


@pytest.mark.chaos
class TestInjectedCheckpointFaults:
    def test_injected_truncation_forces_fallback(self, tmp_path):
        from repro.resilience import FaultPlan, use_faults

        plan = FaultPlan(seed=2012).with_checkpoint_corruption(
            write_index=1, mode="truncate"
        )
        sim = tiny_sim(n_steps=2)
        ck = Checkpointer(tmp_path)
        with use_faults(plan):
            sim.step()
            first = ck.maybe_checkpoint(sim)
            sim.step()
            ck.maybe_checkpoint(sim)
            assert plan.injected["checkpoint"] == 1
            assert find_latest_valid(tmp_path) == first
            # falling back across the corrupt file counts as a survived
            # checkpoint fault
            assert plan.recovered.get("checkpoint") == 1

    def test_injected_bitflip_detected(self, tmp_path):
        from repro.resilience import FaultPlan, use_faults

        plan = FaultPlan(seed=2012).with_checkpoint_corruption(
            write_index=0, mode="bitflip"
        )
        sim = tiny_sim()
        with use_faults(plan):
            path = save_checkpoint(tmp_path / "flip", sim)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
