"""Tests for velocity statistics and redshift-space distortions,
including the linear-theory consistency checks on Zel'dovich snapshots."""

import numpy as np
import pytest

from repro.analysis.power import matter_power_spectrum
from repro.analysis.redshift_space import (
    kaiser_monopole_boost,
    kaiser_quadrupole_ratio,
    power_multipoles,
    redshift_space_positions,
)
from repro.analysis.velocity import (
    bulk_flow,
    pairwise_velocity,
    velocity_divergence_spectrum,
)
from repro.cosmology import WMAP7, make_initial_conditions


@pytest.fixture(scope="module")
def zeldovich_snapshot():
    """A Zel'dovich snapshot: positions + peculiar velocities v = p/a,
    plus the background factors at the snapshot epoch."""
    ics = make_initial_conditions(
        WMAP7, n_per_dim=24, box_size=300.0, z_init=9.0, seed=17
    )
    a = ics.a_init
    return {
        "pos": ics.positions,
        "vel": ics.momenta / a,
        "box": ics.box_size,
        "a": a,
        "f": float(WMAP7.growth_rate(a)),
        "e": float(WMAP7.efunc(a)),
    }


class TestVelocityDivergence:
    def test_linear_theory_relation(self, zeldovich_snapshot):
        """theta = -delta in linear theory: P_tt == P_dd at low k."""
        s = zeldovich_snapshot
        ptt = velocity_divergence_spectrum(
            s["pos"], s["vel"], s["box"], 24,
            a=s["a"], growth_rate=s["f"], efunc=s["e"],
        )
        pdd = matter_power_spectrum(
            s["pos"], s["box"], 24, subtract_shot_noise=False
        )
        ratio = ptt.power[:4] / pdd.power[:4]
        assert np.all(ratio > 0.75)
        assert np.all(ratio < 1.3)

    def test_cold_lattice_has_no_divergence(self):
        rng = np.random.default_rng(0)
        g = np.arange(8) * 10.0
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        vel = np.zeros_like(pos)
        ps = velocity_divergence_spectrum(
            pos, vel, 80.0, 8, a=0.5, growth_rate=0.5, efunc=2.0
        )
        assert np.all(ps.power < 1e-12)

    def test_validation(self, zeldovich_snapshot):
        s = zeldovich_snapshot
        with pytest.raises(ValueError):
            velocity_divergence_spectrum(
                s["pos"], s["vel"], s["box"], 16,
                a=0.0, growth_rate=0.5, efunc=1.0,
            )
        with pytest.raises(ValueError):
            velocity_divergence_spectrum(
                s["pos"], s["vel"], s["box"], 16,
                a=0.5, growth_rate=0.0, efunc=1.0,
            )


class TestPairwiseVelocity:
    def test_infall_signature(self, zeldovich_snapshot):
        """Growing structure means pairs approach: v12 < 0 on scales
        with positive correlation."""
        s = zeldovich_snapshot
        pv = pairwise_velocity(
            s["pos"], s["vel"], s["box"], r_min=5.0, r_max=40.0, n_bins=5
        )
        populated = pv.pair_counts > 100
        assert populated.any()
        assert np.mean(pv.v12[populated]) < 0.0

    def test_random_velocities_average_out(self, rng):
        pos = rng.uniform(0, 50.0, (3000, 3))
        vel = rng.standard_normal((3000, 3))
        pv = pairwise_velocity(pos, vel, 50.0, r_min=2.0, r_max=12.0, n_bins=4)
        sigma = 1.0 * np.sqrt(2.0 / np.maximum(pv.pair_counts, 1))
        assert np.all(np.abs(pv.v12) < 5 * sigma + 1e-12)

    def test_subsampling_cap(self, rng):
        pos = rng.uniform(0, 20.0, (2000, 3))
        vel = rng.standard_normal((2000, 3))
        pv = pairwise_velocity(
            pos, vel, 20.0, r_min=1.0, r_max=8.0, n_bins=3, max_pairs=5000
        )
        assert pv.pair_counts.sum() <= 5000

    def test_validation(self, rng):
        pos = rng.uniform(0, 10, (10, 3))
        with pytest.raises(ValueError):
            pairwise_velocity(pos, np.zeros((9, 3)), 10.0)
        with pytest.raises(ValueError):
            pairwise_velocity(pos, np.zeros((10, 3)), 10.0, r_min=6.0)


class TestBulkFlow:
    def test_uniform_flow_recovered(self, rng):
        pos = rng.uniform(0, 20.0, (500, 3))
        vel = np.tile([1.0, -2.0, 0.5], (500, 1))
        bf = bulk_flow(pos, vel, 20.0, np.array([10.0, 10, 10]), 8.0)
        assert np.allclose(bf, [1.0, -2.0, 0.5])

    def test_empty_sphere_rejected(self, rng):
        pos = np.full((5, 3), 1.0)
        with pytest.raises(ValueError):
            bulk_flow(pos, np.zeros((5, 3)), 20.0, np.array([15.0, 15, 15]), 0.5)


class TestRedshiftSpace:
    def test_los_shift_only(self, zeldovich_snapshot):
        s = zeldovich_snapshot
        rs = redshift_space_positions(
            s["pos"], s["vel"], s["box"], a=s["a"], efunc=s["e"], axis=2
        )
        assert np.allclose(rs[:, 0], s["pos"][:, 0])
        assert np.allclose(rs[:, 1], s["pos"][:, 1])
        assert not np.allclose(rs[:, 2], s["pos"][:, 2])

    def test_zero_velocity_identity(self, rng):
        pos = rng.uniform(0, 10.0, (100, 3))
        rs = redshift_space_positions(
            pos, np.zeros_like(pos), 10.0, a=0.5, efunc=2.0
        )
        assert np.allclose(rs, pos)

    def test_kaiser_monopole_boost(self, zeldovich_snapshot):
        """The headline RSD effect: redshift-space monopole exceeds the
        real-space power by (1 + 2 beta/3 + beta^2/5) at low k."""
        s = zeldovich_snapshot
        rs = redshift_space_positions(
            s["pos"], s["vel"], s["box"], a=s["a"], efunc=s["e"]
        )
        real = power_multipoles(s["pos"], s["box"], 24)
        red = power_multipoles(rs, s["box"], 24)
        measured = np.mean(red.monopole[:4] / real.monopole[:4])
        expected = kaiser_monopole_boost(s["f"])
        assert measured == pytest.approx(expected, rel=0.15)

    def test_kaiser_quadrupole(self, zeldovich_snapshot):
        """Positive quadrupole with the Kaiser amplitude at low k."""
        s = zeldovich_snapshot
        rs = redshift_space_positions(
            s["pos"], s["vel"], s["box"], a=s["a"], efunc=s["e"]
        )
        red = power_multipoles(rs, s["box"], 24)
        measured = np.mean(red.quadrupole[:4] / red.monopole[:4])
        expected = kaiser_quadrupole_ratio(s["f"])
        assert measured == pytest.approx(expected, rel=0.35)
        assert measured > 0

    def test_real_space_isotropic(self, zeldovich_snapshot):
        """No velocities applied: quadrupole consistent with zero in the
        well-populated bins (the first bins carry ~20 modes and scatter
        at the +-0.5 level; lattice aliasing leaves a ~0.1 residual at
        mid-k — both far below the Kaiser quadrupole ~0.9 f)."""
        s = zeldovich_snapshot
        real = power_multipoles(s["pos"], s["box"], 24)
        well = real.n_modes > 150
        ratio = np.abs(real.quadrupole[well][:4]) / real.monopole[well][:4]
        assert np.all(ratio < 0.25)

    def test_kaiser_formulas(self):
        assert kaiser_monopole_boost(0.0) == 1.0
        assert kaiser_quadrupole_ratio(0.0) == 0.0
        # textbook value at beta = 1
        assert kaiser_monopole_boost(1.0) == pytest.approx(1.8667, abs=1e-3)
        with pytest.raises(ValueError):
            kaiser_monopole_boost(-0.1)

    def test_validation(self, rng):
        pos = rng.uniform(0, 10, (10, 3))
        with pytest.raises(ValueError):
            redshift_space_positions(
                pos, np.zeros_like(pos), 10.0, a=0.5, efunc=1.0, axis=5
            )
        with pytest.raises(ValueError):
            power_multipoles(pos, 10.0, 8, axis=7)
