"""Tests for the pencil- and slab-decomposed distributed FFTs."""

import numpy as np
import pytest

from repro.fft.local import SequentialFFT
from repro.fft.pencil import PencilFFT, PencilLayout
from repro.fft.slab import SlabFFT
from repro.parallel.comm import SimulatedComm


class TestPencilLayout:
    def test_local_shapes(self):
        lay = PencilLayout("z-pencil", 2, 4, 16)
        assert lay.local_shape() == (8, 4, 16)
        assert PencilLayout("y-pencil", 2, 4, 16).local_shape() == (8, 16, 4)
        assert PencilLayout("x-pencil", 2, 4, 16).local_shape() == (16, 8, 4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            PencilLayout("w-pencil", 2, 2, 8).local_shape()


class TestPencilFFT:
    @pytest.mark.parametrize("n,pr,pc", [(8, 1, 1), (8, 2, 2), (8, 4, 2), (12, 3, 2), (12, 2, 3), (16, 4, 4), (10, 5, 2)])
    def test_forward_matches_fftn(self, n, pr, pc, rng):
        x = rng.standard_normal((n, n, n))
        p = PencilFFT(n, pr, pc)
        k = p.gather(p.forward(p.scatter(x)), "x-pencil")
        assert np.allclose(k, np.fft.fftn(x), atol=1e-9)

    @pytest.mark.parametrize("n,pr,pc", [(8, 2, 2), (12, 3, 2)])
    def test_roundtrip(self, n, pr, pc, rng):
        x = rng.standard_normal((n, n, n))
        p = PencilFFT(n, pr, pc)
        back = p.gather(p.inverse(p.forward(p.scatter(x))), "z-pencil")
        assert np.allclose(back.real, x, atol=1e-10)
        assert np.max(np.abs(back.imag)) < 1e-10

    def test_native_backend_matches(self, rng):
        x = rng.standard_normal((12, 12, 12))
        ref = PencilFFT(12, 2, 2)
        nat = PencilFFT(12, 2, 2, fft=SequentialFFT("native"))
        a = ref.gather(ref.forward(ref.scatter(x)), "x-pencil")
        b = nat.gather(nat.forward(nat.scatter(x)), "x-pencil")
        assert np.allclose(a, b, atol=1e-8)

    def test_scatter_gather_identity(self, rng):
        x = rng.standard_normal((8, 8, 8))
        p = PencilFFT(8, 2, 4)
        assert np.array_equal(p.gather(p.scatter(x), "z-pencil"), x)

    def test_traffic_is_recorded(self, rng):
        p = PencilFFT(8, 2, 2)
        x = rng.standard_normal((8, 8, 8))
        p.forward(p.scatter(x))
        stats = p.comm.stats
        assert stats.tag_bytes("fft.transpose.zy") > 0
        assert stats.tag_bytes("fft.transpose.yx") > 0

    def test_traffic_matches_analytic_count(self, rng):
        """Recorded bytes equal the analytic per-rank transpose volume."""
        p = PencilFFT(8, 2, 4)
        x = rng.standard_normal((8, 8, 8)).astype(np.complex128)
        p.forward(p.scatter(x))
        recorded = p.comm.stats.bytes
        expected = p.transpose_bytes_per_rank() * p.size
        assert recorded == expected

    def test_trivial_single_rank_has_no_traffic(self, rng):
        p = PencilFFT(8, 1, 1)
        p.forward(p.scatter(rng.standard_normal((8, 8, 8))))
        assert p.comm.stats.bytes == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=8, pr=3, pc=2),   # pr does not divide n
            dict(n=8, pr=2, pc=3),   # pc does not divide n
            dict(n=1, pr=1, pc=1),   # grid too small
            dict(n=8, pr=0, pc=2),   # bad rank grid
            dict(n=2, pr=2, pc=4),   # Nrank > N^2
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            PencilFFT(**kwargs)

    def test_shared_comm_size_checked(self):
        with pytest.raises(ValueError):
            PencilFFT(8, 2, 2, comm=SimulatedComm(3))

    def test_wrong_block_shapes_rejected(self, rng):
        p = PencilFFT(8, 2, 2)
        bad = [rng.standard_normal((4, 4, 4))] * 4
        with pytest.raises(ValueError):
            p.forward(bad)

    def test_rank_ceiling_allows_n_squared(self):
        # pencil supports Nrank up to N^2 (here 4x4=16 ranks on N=4)
        p = PencilFFT(4, 4, 4)
        assert p.size == 16


class TestSlabFFT:
    @pytest.mark.parametrize("n,r", [(8, 1), (8, 2), (8, 4), (8, 8), (12, 3), (10, 5)])
    def test_forward_matches_fftn(self, n, r, rng):
        x = rng.standard_normal((n, n, n))
        s = SlabFFT(n, r)
        k = s.gather(s.forward(s.scatter(x)), "y-slab")
        assert np.allclose(k, np.fft.fftn(x), atol=1e-9)

    def test_roundtrip(self, rng):
        x = rng.standard_normal((8, 8, 8))
        s = SlabFFT(8, 4)
        back = s.gather(s.inverse(s.forward(s.scatter(x))), "x-slab")
        assert np.allclose(back.real, x, atol=1e-10)

    def test_rank_ceiling_enforced(self):
        """The paper's slab limitation: Nrank < N forced the pencil FFT."""
        with pytest.raises(ValueError, match="PencilFFT"):
            SlabFFT(8, 16)

    def test_traffic_matches_analytic_count(self, rng):
        s = SlabFFT(8, 4)
        s.forward(s.scatter(rng.standard_normal((8, 8, 8))))
        assert s.comm.stats.bytes == s.transpose_bytes_per_rank() * s.size

    def test_slab_traffic_exceeds_pencil_at_same_ranks(self, rng):
        """Pencil transposes are subset-local; slab is one global
        all-to-all of the same volume, but pencil splits it into two
        smaller phases — total bytes are comparable, message structure
        differs (pencil: 2 phases of p-1 peers; slab: R-1 peers)."""
        x = rng.standard_normal((8, 8, 8))
        s = SlabFFT(8, 4)
        s.forward(s.scatter(x))
        p = PencilFFT(8, 2, 2)
        p.forward(p.scatter(x))
        assert s.comm.stats.messages == 4 * 3  # R(R-1)
        assert p.comm.stats.messages == 2 * 4 * 1  # 2 phases, 1 peer each

    @pytest.mark.parametrize("kwargs", [dict(n=8, nranks=3), dict(n=1, nranks=1), dict(n=8, nranks=0)])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            SlabFFT(**kwargs)
