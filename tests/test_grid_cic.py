"""Tests for CIC deposit/interpolation."""

import numpy as np
import pytest

from repro.grid.cic import (
    cic_deposit,
    cic_interpolate,
    cic_window,
    density_contrast,
)


class TestDeposit:
    def test_mass_conservation(self, rng):
        pos = rng.uniform(0, 37.0, (1234, 3))
        grid = cic_deposit(pos, 16, 37.0)
        assert grid.sum() == pytest.approx(1234.0, rel=1e-12)

    def test_weighted_mass_conservation(self, rng):
        pos = rng.uniform(0, 10.0, (100, 3))
        w = rng.uniform(0, 2, 100)
        grid = cic_deposit(pos, 8, 10.0, weights=w)
        assert grid.sum() == pytest.approx(w.sum(), rel=1e-12)

    def test_particle_at_grid_point(self):
        """A particle exactly on a grid point deposits all its mass there."""
        grid = cic_deposit(np.array([[2.5, 5.0, 7.5]]), 4, 10.0)
        assert grid[1, 2, 3] == pytest.approx(1.0)
        assert grid.sum() == pytest.approx(1.0)

    def test_particle_at_cell_center_splits_eight_ways(self):
        grid = cic_deposit(np.array([[1.25, 1.25, 1.25]]), 4, 10.0)
        corners = grid[grid > 0]
        assert len(corners) == 8
        assert np.allclose(corners, 0.125)

    def test_periodic_wrap_in_deposit(self):
        """A particle near the high face deposits onto the low face."""
        grid = cic_deposit(np.array([[9.9, 0.0, 0.0]]), 4, 10.0)
        assert grid[0, 0, 0] > 0  # wrapped contribution
        assert grid[3, 0, 0] > 0

    def test_positions_outside_box_wrapped(self):
        a = cic_deposit(np.array([[12.5, 5.0, 5.0]]), 4, 10.0)
        b = cic_deposit(np.array([[2.5, 5.0, 5.0]]), 4, 10.0)
        assert np.allclose(a, b)

    def test_uniform_lattice_gives_uniform_grid(self):
        n = 4
        x = np.arange(n) * 2.5
        g = np.stack(np.meshgrid(x, x, x, indexing="ij"), axis=-1).reshape(-1, 3)
        grid = cic_deposit(g, n, 10.0)
        assert np.allclose(grid, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(positions=np.zeros((3, 2)), n=4, box_size=1.0),
            dict(positions=np.zeros((3, 3)), n=1, box_size=1.0),
            dict(positions=np.zeros((3, 3)), n=4, box_size=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            cic_deposit(**kwargs)

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((3, 3)), 4, 1.0, weights=np.ones(2))


class TestInterpolate:
    def test_constant_field_exact(self, rng):
        grid = np.full((8, 8, 8), 3.5)
        pos = rng.uniform(0, 20.0, (50, 3))
        assert np.allclose(cic_interpolate(grid, pos, 20.0), 3.5)

    def test_linear_field_reproduced_mid_cell(self):
        """CIC is exact for fields linear in one coordinate (interior)."""
        n, box = 16, 16.0
        x = np.arange(n)
        grid = np.broadcast_to(x[:, None, None], (n, n, n)).astype(float)
        pts = np.array([[4.5, 8.0, 8.0], [7.25, 3.0, 12.0]])
        vals = cic_interpolate(grid, pts, box)
        assert vals[0] == pytest.approx(4.5)
        assert vals[1] == pytest.approx(7.25)

    def test_adjointness(self, rng):
        """<deposit(p), g> == <w, interpolate(g, p)> — the property that
        makes the PM force momentum conserving."""
        n, box = 8, 10.0
        pos = rng.uniform(0, box, (40, 3))
        w = rng.uniform(0.5, 2.0, 40)
        g = rng.standard_normal((n, n, n))
        lhs = np.sum(cic_deposit(pos, n, box, w) * g)
        rhs = np.sum(w * cic_interpolate(g, pos, box))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_noncubic_grid_rejected(self):
        with pytest.raises(ValueError):
            cic_interpolate(np.zeros((4, 4, 5)), np.zeros((1, 3)), 1.0)


class TestDensityContrast:
    def test_zero_mean(self, rng):
        pos = rng.uniform(0, 10.0, (500, 3))
        delta = density_contrast(pos, 8, 10.0)
        assert abs(delta.mean()) < 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            density_contrast(np.zeros((0, 3)), 8, 10.0)


class TestWindow:
    def test_unity_at_zero(self):
        assert float(cic_window(0.0, 0.0, 0.0, 1.0)) == 1.0

    def test_nyquist_suppression(self):
        # W = sinc^2(k spacing / 2): at the Nyquist mode sinc(pi/2) = 2/pi
        w = float(cic_window(np.pi, 0.0, 0.0, 1.0))
        assert w == pytest.approx((2 / np.pi) ** 2, rel=1e-10)

    def test_separable(self):
        wx = float(cic_window(0.5, 0.0, 0.0, 1.0))
        wy = float(cic_window(0.0, 0.5, 0.0, 1.0))
        wxy = float(cic_window(0.5, 0.5, 0.0, 1.0))
        assert wxy == pytest.approx(wx * wy, rel=1e-12)
