"""Tests for the instrumentation subsystem (repro.instrument).

Everything timing-related runs against an injected FakeClock so the
suite is deterministic; only the thread-safety tests use the real clock
(they assert counts and nesting, never durations).
"""

from __future__ import annotations

import io
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import instrument
from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument import (
    Counter,
    FakeClock,
    NullRegistry,
    Registry,
    count,
    get_registry,
    span,
    timed,
    use,
)
from repro.instrument import exporters, report


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def registry(clock):
    """A live registry installed as the active one for the test."""
    reg = Registry(clock=clock)
    with use(reg):
        yield reg


@pytest.fixture(autouse=True)
def _restore_null_registry():
    """Never leak an enabled registry into other tests."""
    yield
    instrument.disable()


def tiny_sim(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=10.0,
        n_steps=2,
        backend="pm",
        seed=5,
    )
    base.update(kwargs)
    return HACCSimulation(SimulationConfig(**base))


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_single_span_duration(self, registry, clock):
        with registry.span("work"):
            clock.advance(2.5)
        assert registry.section_seconds("work") == 2.5
        assert registry.section_totals()["work"]["calls"] == 1

    def test_nested_spans_paths_and_totals(self, registry, clock):
        with registry.span("outer"):
            clock.advance(1.0)
            with registry.span("inner"):
                clock.advance(0.25)
            with registry.span("inner"):
                clock.advance(0.25)
        totals = registry.section_totals()
        assert totals["outer"] == {"calls": 1, "seconds": 1.5}
        assert totals["inner"] == {"calls": 2, "seconds": 0.5}
        paths = registry.path_totals()
        assert paths["outer/inner"]["calls"] == 2
        events = registry.events
        assert {e.path for e in events} == {"outer", "outer/inner"}

    def test_deep_nesting_path(self, registry, clock):
        with registry.span("a"), registry.span("b"), registry.span("c"):
            clock.advance(1.0)
        assert "a/b/c" in registry.path_totals()

    def test_module_level_span_uses_active_registry(self, registry, clock):
        with span("modlevel"):
            clock.advance(0.5)
        assert registry.section_seconds("modlevel") == 0.5

    def test_exception_still_closes_span(self, registry, clock):
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                clock.advance(1.0)
                raise RuntimeError("kaput")
        assert registry.section_seconds("boom") == 1.0

    def test_timed_decorator(self, registry, clock):
        @timed("decorated")
        def work(x):
            clock.advance(0.75)
            return 2 * x

        assert work(21) == 42
        assert registry.section_seconds("decorated") == 0.75

    def test_timed_decorator_respects_disable(self, clock):
        @timed("decorated")
        def work():
            clock.advance(1.0)

        reg = Registry(clock=clock)
        with use(reg):
            work()
        work()  # after restore: null registry, not recorded
        assert reg.section_totals()["decorated"]["calls"] == 1

    def test_max_events_cap_keeps_aggregates(self, clock):
        reg = Registry(clock=clock, max_events=3)
        with use(reg):
            for _ in range(10):
                with reg.span("s"):
                    clock.advance(0.1)
        assert len(reg.events) == 3
        assert reg.dropped_events == 7
        assert reg.section_totals()["s"]["calls"] == 10

    def test_reset(self, registry, clock):
        with registry.span("s"):
            clock.advance(1.0)
        registry.count("c", 5)
        registry.reset()
        assert registry.events == []
        assert registry.counters == {}
        assert registry.section_totals() == {}


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
class TestCounters:
    def test_accumulation(self, registry):
        registry.count("x")
        registry.count("x", 4)
        count("y", 2.5)
        assert registry.counters == {"x": 5, "y": 2.5}
        assert registry.counter("x") == 5
        assert registry.counter("missing") == 0

    def test_counter_object_mirrors_into_registry(self, registry):
        c = Counter("pairs")
        c.add(10)
        c.add(32)
        assert c.value == 42
        assert registry.counter("pairs") == 42

    def test_counter_object_counts_while_disabled(self):
        c = Counter("pairs")
        c.add(7)  # no live registry: own value still accumulates
        assert c.value == 7
        assert get_registry().counter("pairs") == 0
        c.reset()
        assert c.value == 0


# ----------------------------------------------------------------------
# step records
# ----------------------------------------------------------------------
class TestStepRecords:
    def test_step_deltas(self, registry, clock):
        with registry.step(0):
            with registry.span("force"):
                clock.advance(1.0)
            registry.count("pairs", 100)
        with registry.step(1):
            with registry.span("force"):
                clock.advance(3.0)
            registry.count("pairs", 50)
        steps = registry.steps
        assert [s.index for s in steps] == [0, 1]
        assert steps[0].sections["force"] == 1.0
        assert steps[1].sections["force"] == 3.0
        assert steps[0].counters["pairs"] == 100
        assert steps[1].counters["pairs"] == 50
        assert steps[1].wall_time == 3.0
        assert steps[1].calls["force"] == 1


# ----------------------------------------------------------------------
# exporters: round trips
# ----------------------------------------------------------------------
@pytest.fixture()
def populated(registry, clock):
    with registry.step(0):
        with registry.span("step"):
            with registry.span("longrange"):
                clock.advance(1.0)
                with registry.span("fft.forward"):
                    clock.advance(0.5)
            with registry.span("shortrange"):
                clock.advance(2.0)
    registry.count("pp.interactions", 1234)
    return registry


class TestExporters:
    def test_jsonl_round_trip(self, populated, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = exporters.write_jsonl(populated, path)
        loaded = exporters.load_jsonl(path)
        assert n == len(loaded["spans"]) + len(loaded["counters"]) + len(
            loaded["steps"]
        )
        assert loaded["spans"] == populated.events
        assert loaded["counters"] == {"pp.interactions": 1234}
        assert loaded["steps"][0]["index"] == 0

    def test_csv_round_trip(self, populated, tmp_path):
        path = tmp_path / "trace.csv"
        n = exporters.write_csv(populated, path)
        loaded = exporters.load_csv(path)
        assert n == len(loaded)
        assert loaded == populated.events

    def test_chrome_trace_round_trip_and_nesting(self, populated, tmp_path):
        path = tmp_path / "trace.json"
        exporters.write_chrome_trace(populated, path)
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)
        assert "traceEvents" in raw  # loadable by chrome://tracing
        loaded = exporters.load_chrome_trace(path)
        assert loaded["counters"] == {"pp.interactions": 1234}
        spans = loaded["spans"]
        assert sorted(s.name for s in spans) == sorted(
            e.name for e in populated.events
        )
        assert exporters.spans_nest(spans)
        by_name = {s.name: s for s in spans}
        fft = by_name["fft.forward"]
        lr = by_name["longrange"]
        assert fft.path == "step/longrange/fft.forward"
        assert lr.start <= fft.start and fft.end <= lr.end

    def test_spans_nest_rejects_overlap(self):
        bad = [
            exporters.SpanEvent("p", "p", 0.0, 1.0, 1),
            exporters.SpanEvent("c", "p/c", 0.5, 2.0, 1),  # leaks out
        ]
        assert not exporters.spans_nest(bad)

    def test_file_object_destinations(self, populated):
        buf = io.StringIO()
        exporters.write_jsonl(populated, buf)
        buf.seek(0)
        assert exporters.load_jsonl(buf)["spans"] == populated.events


class TestRankLanes:
    """Multi-rank span attribution in the exporters (pid-per-rank lanes)."""

    @pytest.fixture()
    def multi_rank(self, registry, clock):
        # interleaved per-rank FFT work, as the pencil sweep records it
        for rank in (0, 1, 2):
            with registry.span("fft.1d", rank=rank):
                clock.advance(0.5)
        with registry.span("reduce"):  # default lane: rank 0
            clock.advance(0.25)
        return registry

    def test_span_events_carry_rank(self, multi_rank):
        ranks = sorted(e.rank for e in multi_rank.events)
        assert ranks == [0, 0, 1, 2]

    def test_chrome_trace_has_one_lane_per_rank(self, multi_rank, tmp_path):
        path = tmp_path / "trace.json"
        n = exporters.write_chrome_trace(multi_rank, path)
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)["traceEvents"]
        spans = [ev for ev in raw if ev["ph"] == "X"]
        meta = [ev for ev in raw if ev["ph"] == "M"]
        assert n == len(spans)  # metadata not counted
        assert sorted({ev["pid"] for ev in spans}) == [0, 1, 2]
        # each lane is labelled for the viewer
        labels = {ev["pid"]: ev["args"]["name"] for ev in meta}
        assert labels == {0: "rank 0", 1: "rank 1", 2: "rank 2"}

    def test_chrome_trace_round_trip_preserves_rank(
        self, multi_rank, tmp_path
    ):
        path = tmp_path / "trace.json"
        exporters.write_chrome_trace(multi_rank, path)
        loaded = exporters.load_chrome_trace(path)
        assert sorted(s.rank for s in loaded["spans"]) == [0, 0, 1, 2]

    def test_csv_round_trip_preserves_rank(self, multi_rank, tmp_path):
        path = tmp_path / "trace.csv"
        exporters.write_csv(multi_rank, path)
        loaded = exporters.load_csv(path)
        assert loaded == multi_rank.events

    def test_legacy_csv_without_rank_column_loads(self, tmp_path):
        path = tmp_path / "old.csv"
        path.write_text(
            "name,path,start,end,duration,thread\n"
            "work,work,0.0,1.0,1.0,1\n"
        )
        (ev,) = exporters.load_csv(path)
        assert ev.rank == 0

    def test_pencil_fft_records_per_rank_spans(self, registry):
        from repro.fft.pencil import PencilFFT

        p = PencilFFT(8, 2, 2)
        field = np.random.default_rng(3).normal(size=(8, 8, 8))
        back = p.gather(p.inverse(p.forward(p.scatter(field))), "z-pencil")
        assert np.allclose(back.real, field, atol=1e-12)
        lanes = {e.rank for e in registry.events if e.name == "fft.1d"}
        assert lanes == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------
class TestThreadSafety:
    def test_concurrent_spans_and_counters(self):
        reg = Registry()  # real clock: assertions are count-based
        n_threads, n_iter = 8, 200

        def work(tid):
            for _ in range(n_iter):
                with reg.span("outer"):
                    with reg.span("inner"):
                        reg.count("ticks", 1)

        with use(reg):
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                list(pool.map(work, range(n_threads)))
        totals = reg.section_totals()
        assert totals["outer"]["calls"] == n_threads * n_iter
        assert totals["inner"]["calls"] == n_threads * n_iter
        assert reg.counter("ticks") == n_threads * n_iter
        # per-thread nesting survived concurrency
        assert all(
            e.path in ("outer", "outer/inner") for e in reg.events
        )
        assert exporters.spans_nest(reg.events)

    def test_threads_have_independent_stacks(self):
        reg = Registry()
        barrier = threading.Barrier(2)

        def work(name):
            with reg.span(name):
                barrier.wait(timeout=10)

        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(work, ["a", "b"]))
        paths = {e.path for e in reg.events}
        assert paths == {"a", "b"}  # neither nested under the other


# ----------------------------------------------------------------------
# disabled (no-op) path
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_default_registry_is_null(self):
        assert isinstance(get_registry(), NullRegistry)
        assert not get_registry().enabled

    def test_null_span_is_shared_singleton(self):
        null = NullRegistry()
        s1 = null.span("a")
        s2 = null.span("b")
        assert s1 is s2  # no allocation per span on the disabled hot path

    def test_null_records_nothing(self):
        null = NullRegistry()
        with null.span("a"):
            pass
        null.count("c", 3)
        with null.step(0):
            pass
        assert null.events == []
        assert null.counters == {}
        assert null.steps == []
        assert null.summary()["enabled"] is False

    def test_simulation_run_disabled_leaves_no_trace(self):
        sim = tiny_sim()
        sim.run()
        assert get_registry().events == []
        assert get_registry().counters == {}
        # legacy driver timings still work without instrumentation
        assert sim.timings["long_range"] > 0

    def test_use_restores_previous(self):
        before = get_registry()
        with use(Registry()):
            assert get_registry() is not before
        assert get_registry() is before


# ----------------------------------------------------------------------
# wired hot paths
# ----------------------------------------------------------------------
class TestSimulationIntegration:
    def test_profiled_run_covers_table2_sections(self):
        reg = instrument.enable()
        sim = tiny_sim(backend="treepm", n_per_dim=8, n_steps=2,
                       n_subcycles=2)
        sim.run()
        totals = reg.section_totals()
        for name in (
            "step", "longrange", "shortrange",
            "cic.deposit", "fft.forward", "poisson.filter", "fft.inverse",
            "cic.interpolate", "tree.build", "tree.walk", "pp.batch",
            "sks.stream", "sks.kick",
        ):
            assert totals.get(name, {}).get("seconds", 0) > 0, name
        assert len(reg.steps) == 2
        assert reg.counter("sks.substeps") == 4
        assert exporters.spans_nest(reg.events)

    def test_interaction_count_agrees_with_counter(self):
        reg = instrument.enable()
        sim = tiny_sim(backend="treepm", n_per_dim=8, n_steps=1)
        sim.run()
        assert sim.interaction_count() > 0
        assert reg.counter("pp.interactions") == sim.interaction_count()
        assert reg.counter("pp.flops") == pytest.approx(
            21.0 * sim.interaction_count()
        )

    def test_pm_run_records_no_shortrange(self):
        reg = instrument.enable()
        sim = tiny_sim(backend="pm")
        sim.run()
        totals = reg.section_totals()
        assert "pp.kernel" not in totals
        assert totals["fft.forward"]["seconds"] > 0

    def test_pencil_fft_sections_and_comm_counters(self):
        from repro.fft.pencil import PencilFFT

        reg = instrument.enable()
        fft = PencilFFT(8, 2, 2)
        x = np.random.default_rng(0).standard_normal((8, 8, 8))
        k = fft.gather(fft.forward(fft.scatter(x.astype(complex))),
                       "x-pencil")
        assert np.allclose(k, np.fft.fftn(x))
        totals = reg.section_totals()
        for name in (
            "fft.pencil.scatter", "fft.pencil.forward",
            "fft.transpose.zy", "fft.transpose.yx", "fft.pencil.gather",
        ):
            assert name in totals, name
        assert reg.counter("comm.bytes") > 0
        assert reg.counter("comm.bytes[fft.transpose.zy]") > 0
        # recorded transpose traffic matches the analytic per-rank count
        analytic = fft.transpose_bytes_per_rank() * fft.size
        recorded = reg.counter("comm.bytes[fft.transpose.zy]") + reg.counter(
            "comm.bytes[fft.transpose.yx]"
        )
        assert recorded == analytic


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
class TestReport:
    def _profiled_registry(self):
        reg = instrument.enable()
        sim = tiny_sim(backend="treepm", n_per_dim=8, n_steps=1,
                       n_subcycles=2)
        sim.run()
        return reg, sim

    def test_section_table_rows(self):
        reg, sim = self._profiled_registry()
        table = report.section_table(reg)
        by_label = {r["label"]: r for r in table}
        assert set(by_label) == {
            "CIC deposit", "forward FFT", "filter", "inverse FFT",
            "CIC interpolate", "tree build", "tree walk", "PP kernel",
            "stream/kick",
        }
        for row in table:
            assert row["seconds"] > 0, row["label"]
            assert 0 < row["model_fraction"] <= 1
        pp = by_label["PP kernel"]
        assert pp["counter"] == "pp.interactions"
        assert pp["counter_value"] == sim.interaction_count()
        assert pp["bucket"] == "kernel"
        assert pp["model_fraction"] == pytest.approx(0.80)

    def test_bucket_fractions_sum_to_one(self):
        reg, _ = self._profiled_registry()
        buckets = report.bucket_table(reg)
        assert {b["bucket"] for b in buckets} == {
            "kernel", "walk", "fft", "other"
        }
        assert sum(b["measured_fraction"] for b in buckets) == pytest.approx(
            1.0
        )
        assert sum(b["model_fraction"] for b in buckets) == pytest.approx(1.0)

    def test_render_profile_mentions_every_row(self):
        reg, _ = self._profiled_registry()
        text = report.render_profile(reg)
        for label in ("CIC deposit", "forward FFT", "filter", "inverse FFT",
                      "tree build", "PP kernel", "stream/kick", "model"):
            assert label in text

    def test_write_bench_record(self, tmp_path):
        reg, sim = self._profiled_registry()
        path = report.write_bench_record(
            "unit/test", {"metric": 1.5}, directory=tmp_path, registry=reg
        )
        assert path.name == "BENCH_unit_test.json"
        with open(path, encoding="utf-8") as fh:
            rec = json.load(fh)
        assert rec["payload"] == {"metric": 1.5}
        assert rec["instrument"]["counters"]["pp.interactions"] == (
            sim.interaction_count()
        )
        # the batched engine charges PP time to pp.batch (the naive
        # per-leaf path would charge pp.kernel; both feed the same row)
        assert rec["instrument"]["sections"]["pp.batch"]["seconds"] > 0


# ----------------------------------------------------------------------
# logging helper
# ----------------------------------------------------------------------
class TestLoggingSetup:
    @pytest.mark.parametrize(
        "verbosity, level",
        [(-2, 30), (-1, 30), (0, 20), (1, 10), (3, 10)],
    )
    def test_levels(self, verbosity, level):
        logger = instrument.logging_setup(verbosity, stream=io.StringIO())
        assert logger.level == level

    def test_idempotent_handler(self):
        stream = io.StringIO()
        logger = instrument.logging_setup(0, stream=stream)
        instrument.logging_setup(0, stream=stream)
        named = [h for h in logger.handlers if h.get_name() == "repro-cli"]
        assert len(named) == 1

    def test_messages_reach_stream(self):
        stream = io.StringIO()
        logger = instrument.logging_setup(0, stream=stream)
        logger.info("hello from repro")
        assert "hello from repro" in stream.getvalue()
