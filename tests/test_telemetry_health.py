"""Tests for per-rank telemetry, physics health monitors, and the run
monitor CLI (repro.instrument.telemetry / health / monitor).

Health-threshold crossings are driven with synthetic value series so the
WARN/CRIT logic is exercised deterministically; the simulation-facing
tests use tiny seeded runs and assert structure (which gauges exist,
stream record kinds, exit statuses), not timing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import instrument
from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument import (
    HealthMonitor,
    HealthThresholds,
    NullTelemetry,
    RunStream,
    Telemetry,
    Threshold,
    enable_telemetry,
    get_telemetry,
    imbalance_factor,
    read_stream,
    run_manifest,
    sparkline,
    use_telemetry,
)
from repro.instrument.health import worst_severity
from repro.instrument.monitor import (
    monitor_exit_status,
    pick_imbalance_series,
    render_monitor,
)
from repro.instrument.telemetry import iter_stream


@pytest.fixture(autouse=True)
def _restore_null_telemetry():
    """Never leak an enabled telemetry into other tests."""
    yield
    instrument.disable_telemetry()


def tiny_config(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=10.0,
        n_steps=2,
        backend="pm",
        seed=5,
    )
    base.update(kwargs)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
# imbalance + sparkline helpers
# ----------------------------------------------------------------------
class TestImbalanceFactor:
    def test_balanced_is_one(self):
        assert imbalance_factor([4, 4, 4, 4]) == 1.0

    def test_max_over_mean(self):
        # mean 2, max 4
        assert imbalance_factor([1, 1, 2, 4]) == 2.0

    def test_empty_is_zero(self):
        assert imbalance_factor([]) == 0.0

    def test_all_zero_is_one(self):
        assert imbalance_factor([0, 0]) == 1.0


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp_is_nondecreasing(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert len(s) == 5
        assert list(s) == sorted(s)

    def test_constant_renders_lowest_level(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_nan_renders_blank(self):
        assert " " in sparkline([1.0, float("nan"), 2.0])


# ----------------------------------------------------------------------
# Telemetry collection
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_gauge_set_and_accumulate(self):
        tel = Telemetry()
        tel.gauge("particles", 0, 10)
        tel.gauge("particles", 0, 12)  # set semantics: overwrite
        tel.add_gauge("interactions", 0, 5)
        tel.add_gauge("interactions", 0, 7)  # add semantics: accumulate
        step = tel.record_step(0, 0.5, 1.0)
        assert step.gauges["particles"][0] == 12
        assert step.gauges["interactions"][0] == 12

    def test_record_step_clears_pending(self):
        tel = Telemetry()
        tel.gauge("particles", 0, 1)
        tel.record_step(0, 0.5, 1.0)
        step2 = tel.record_step(1, 0.6, 1.0)
        assert step2.gauges == {}

    def test_imbalance_per_step(self):
        tel = Telemetry()
        tel.gauge("particles", 0, 1)
        tel.gauge("particles", 1, 3)
        assert tel.peek_imbalance() == {"particles": 1.5}
        step = tel.record_step(0, 0.5, 1.0)
        assert step.imbalance["particles"] == 1.5
        assert tel.imbalance("particles") == 1.5
        assert tel.max_imbalance() == {"particles": 1.5}

    def test_step_redshift(self):
        tel = Telemetry()
        step = tel.record_step(0, 0.25, 1.0)
        assert step.z == pytest.approx(3.0)

    def test_alerts_and_residuals_recorded(self):
        tel = Telemetry()
        step = tel.record_step(
            3, 0.9, 2.0,
            residuals={"energy_residual": 0.01},
            alerts=[{"severity": "WARN", "check": "energy_residual"}],
        )
        d = step.to_dict()
        assert d["step"] == 3
        assert d["residuals"]["energy_residual"] == 0.01
        assert d["alerts"][0]["severity"] == "WARN"

    def test_summary(self):
        tel = Telemetry()
        tel.gauge("particles", 0, 2)
        tel.record_step(0, 0.5, 1.5, alerts=[{"severity": "WARN"}])
        s = tel.summary()
        assert s["steps"] == 1
        assert s["alerts"] == 1
        assert s["wall_time"] == 1.5


class TestNullTelemetry:
    def test_disabled_is_default(self):
        assert get_telemetry().enabled is False

    def test_all_operations_are_noops(self):
        tel = NullTelemetry()
        assert tel.gauge("x", 0, 1) is None
        assert tel.add_gauge("x", 0, 1) is None
        assert tel.record_step(0, 0.5, 1.0) is None
        assert tel.steps == []
        assert tel.last is None
        assert tel.peek_imbalance() == {}
        assert tel.summary()["enabled"] is False

    def test_use_telemetry_restores(self):
        live = Telemetry()
        with use_telemetry(live) as tel:
            assert get_telemetry() is tel
        assert get_telemetry().enabled is False

    def test_disabled_sim_records_nothing(self):
        sim = HACCSimulation(tiny_config(n_steps=1))
        sim.run()
        assert get_telemetry().steps == []


# ----------------------------------------------------------------------
# run streams
# ----------------------------------------------------------------------
class TestRunStream:
    def test_manifest_then_steps_then_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = RunStream(path, manifest={"config_hash": "abc"})
        tel = Telemetry(stream=stream)
        tel.gauge("particles", 0, 5)
        tel.record_step(0, 0.5, 1.0)
        tel.finish(verdict="OK")
        data = read_stream(path)
        assert data["manifest"]["config_hash"] == "abc"
        assert len(data["steps"]) == 1
        assert data["steps"][0]["gauges"]["particles"]["0"] == 5.0
        assert data["end"]["verdict"] == "OK"
        assert data["end"]["steps"] == 1

    def test_lines_flushed_immediately(self, tmp_path):
        """A live monitor must see steps before the stream is closed."""
        path = tmp_path / "run.jsonl"
        stream = RunStream(path)
        stream.append({"step": 0})
        live = read_stream(path)
        assert len(live["steps"]) == 1
        assert live["end"] is None
        stream.close()

    def test_partial_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"kind": "telemetry", "step": 0}) + "\n"
            + '{"kind": "telem'  # writer mid-line
        )
        assert len(list(iter_stream(path))) == 1

    def test_append_after_close_raises(self, tmp_path):
        stream = RunStream(tmp_path / "run.jsonl")
        stream.close()
        with pytest.raises(ValueError):
            stream.append({"step": 0})

    def test_manifest_contents(self):
        cfg = tiny_config()
        man = run_manifest(cfg)
        assert man["config_hash"] == cfg.config_hash()
        assert man["seed"] == cfg.seed
        assert man["n_steps"] == cfg.n_steps
        assert man["numpy"] == np.__version__
        assert man["config"]["box_size"] == cfg.box_size

    def test_config_hash_stable_and_sensitive(self):
        cfg = tiny_config()
        assert cfg.config_hash() == tiny_config().config_hash()
        assert cfg.config_hash() != cfg.with_(seed=6).config_hash()


# ----------------------------------------------------------------------
# health thresholds + monitor
# ----------------------------------------------------------------------
class TestThreshold:
    def test_severity_bands(self):
        th = Threshold(warn=1.0, crit=10.0)
        assert th.severity(0.5) == "OK"
        assert th.severity(1.0) == "WARN"
        assert th.severity(10.0) == "CRIT"

    def test_nan_is_crit(self):
        assert Threshold(1.0, 2.0).severity(float("nan")) == "CRIT"

    def test_warn_above_crit_rejected(self):
        with pytest.raises(ValueError):
            Threshold(warn=2.0, crit=1.0)

    def test_with_accepts_tuples(self):
        ths = HealthThresholds().with_(energy_residual=(0.1, 0.2))
        assert ths.energy_residual == Threshold(0.1, 0.2)

    def test_worst_severity(self):
        assert worst_severity([]) == "OK"
        assert worst_severity(["OK", "WARN"]) == "WARN"
        assert worst_severity(["WARN", "CRIT", "OK"]) == "CRIT"


class TestHealthMonitor:
    def test_ok_run_has_no_events(self):
        mon = HealthMonitor()
        assert mon.check(0, {"energy_residual": 0.01}) == []
        assert mon.verdict() == "OK"
        assert mon.exit_status() == 0

    def test_warn_then_crit_crossing(self):
        """A drifting series crosses WARN then CRIT deterministically."""
        mon = HealthMonitor(
            HealthThresholds().with_(energy_residual=(0.1, 1.0))
        )
        series = [0.05, 0.2, 0.5, 2.0]
        events = [
            ev for i, v in enumerate(series)
            for ev in mon.check(i, {"energy_residual": v})
        ]
        assert [e.severity for e in events] == ["WARN", "WARN", "CRIT"]
        assert events[-1].step == 3
        assert mon.verdict() == "CRIT"
        assert mon.exit_status() == 2

    def test_unthresholded_values_never_alert(self):
        mon = HealthMonitor()
        assert mon.check(0, {"custom_metric": 1e9}) == []
        assert mon.last_values["custom_metric"] == 1e9

    def test_event_message_names_check_and_step(self):
        mon = HealthMonitor(HealthThresholds().with_(imbalance=(1.1, 2.0)))
        (ev,) = mon.check(7, {"imbalance": 1.5})
        assert "imbalance" in ev.message
        assert "step 7" in ev.message
        assert ev.threshold == 1.1

    def test_summary(self):
        mon = HealthMonitor(HealthThresholds().with_(imbalance=(1.1, 2.0)))
        mon.check(0, {"imbalance": 1.5})
        mon.check(1, {"imbalance": 3.0})
        s = mon.summary()
        assert s == {
            "verdict": "CRIT",
            "warnings": 1,
            "criticals": 1,
            "last_values": {"imbalance": 3.0},
        }


# ----------------------------------------------------------------------
# simulation wiring
# ----------------------------------------------------------------------
class TestSimulationHealth:
    def test_healthy_run_verdict(self):
        sim = HACCSimulation(tiny_config())
        sim.attach_health()
        sim.run()
        vals = sim.health.monitor.last_values
        # precision invariants are machine-level on a healthy run
        assert vals["momentum_drift"] < 1e-10
        assert vals["mass_error"] < 1e-10
        assert vals["fft_roundtrip"] < 1e-12
        assert sim.health.exit_status() == 0

    def test_artificially_low_threshold_goes_crit(self):
        """The acceptance scenario: tiny CRIT level -> CRIT + exit 2."""
        sim = HACCSimulation(tiny_config())
        sim.attach_health(
            thresholds=HealthThresholds().with_(
                energy_residual=(1e-9, 1e-9)
            )
        )
        sim.run()
        assert sim.health.verdict() == "CRIT"
        assert sim.health.exit_status() == 2
        assert any(
            e.check == "energy_residual" and e.severity == "CRIT"
            for e in sim.health.monitor.events
        )

    def test_attach_after_stepping_rejected(self):
        sim = HACCSimulation(tiny_config())
        sim.step()
        with pytest.raises(RuntimeError):
            sim.attach_health()

    def test_health_without_telemetry(self):
        """Health monitoring works with telemetry disabled."""
        sim = HACCSimulation(tiny_config(n_steps=1))
        sim.attach_health()
        sim.run()
        assert get_telemetry().enabled is False
        assert len(sim.health.monitor.last_values) == 4


class TestDriverTelemetry:
    def _run_overloaded(self, stream=None):
        cfg = tiny_config(
            backend="treepm", n_steps=2, n_subcycles=2, leaf_size=16
        )
        sim = HACCSimulation(
            cfg, decomposition_dims=(2, 1, 1), overload_depth=14.0
        )
        tel = enable_telemetry(stream)
        sim.attach_health()
        sim.run()
        return sim, tel

    def test_per_rank_gauges_present(self):
        sim, tel = self._run_overloaded()
        assert len(tel.steps) == 2
        step = tel.steps[0]
        for gauge in (
            "particles", "ghosts", "ghost_fraction",
            "interactions", "tree_depth", "comm_bytes",
        ):
            assert set(step.gauges[gauge]) == {0, 1}, gauge
        # every particle is active on exactly one rank
        assert sum(step.gauges["particles"].values()) == sim.particles.n
        assert step.imbalance["particles"] >= 1.0

    def test_wall_time_and_residuals_recorded(self):
        _, tel = self._run_overloaded()
        step = tel.steps[-1]
        assert step.wall_time > 0
        assert "energy_residual" in step.residuals
        assert "momentum_drift" in step.residuals

    def test_comm_bytes_are_per_step_deltas(self):
        _, tel = self._run_overloaded()
        # distribute runs once per force evaluation; later steps must not
        # re-report the cumulative totals of earlier ones
        s0 = sum(tel.steps[0].gauges["comm_bytes"].values())
        s1 = sum(tel.steps[1].gauges["comm_bytes"].values())
        assert s0 > 0
        assert s1 < 2 * s0

    def test_stream_written_during_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        cfg = tiny_config(n_steps=2)
        stream = RunStream(path, manifest=run_manifest(cfg))
        sim = HACCSimulation(cfg)
        enable_telemetry(stream)
        sim.run()
        get_telemetry().finish(verdict="OK")
        data = read_stream(path)
        assert data["manifest"]["config_hash"] == cfg.config_hash()
        assert len(data["steps"]) == 2
        assert data["end"]["verdict"] == "OK"


# ----------------------------------------------------------------------
# monitor rendering
# ----------------------------------------------------------------------
def synthetic_stream(n_steps=4, total=8, with_end=False, crit=False):
    steps = []
    for i in range(n_steps):
        alerts = []
        if crit and i == n_steps - 1:
            alerts.append({
                "severity": "CRIT", "check": "energy_residual",
                "message": "energy_residual blew up",
            })
        steps.append({
            "kind": "telemetry", "step": i, "a": 0.1 + 0.1 * i,
            "z": 1.0 / (0.1 + 0.1 * i) - 1.0, "wall_time": 2.0,
            "gauges": {"particles": {"0": 10, "1": 14}},
            "imbalance": {"particles": 1.0 + 0.05 * i},
            "residuals": {"energy_residual": 0.01 * (i + 1)},
            "alerts": alerts,
        })
    return {
        "manifest": {
            "kind": "manifest", "config_hash": "deadbeef", "n_steps": total,
            "backend": "treepm", "n_particles": 4096, "seed": 1,
        },
        "steps": steps,
        "end": (
            {"kind": "end", "steps": n_steps,
             "verdict": "CRIT" if crit else "OK"}
            if with_end else None
        ),
    }


class TestRenderMonitor:
    def test_progress_and_eta(self):
        text = render_monitor(synthetic_stream(n_steps=4, total=8))
        assert "step 4/8 (50%)" in text
        # 4 steps x 2 s done -> 8 s for the remaining 4
        assert "ETA 8.0s" in text
        assert "running..." in text

    def test_identity_line(self):
        text = render_monitor(synthetic_stream())
        assert "run deadbeef" in text
        assert "treepm" in text
        assert "4,096 particles" in text

    def test_imbalance_sparkline_and_residuals(self):
        text = render_monitor(synthetic_stream())
        assert "imbalance" in text
        assert "particles max/mean 1.15" in text
        assert "energy_residual 4.00e-02" in text

    def test_alerts_rendered(self):
        text = render_monitor(synthetic_stream(crit=True))
        assert "0 WARN, 1 CRIT" in text
        assert "energy_residual blew up" in text

    def test_finished_verdict(self):
        text = render_monitor(
            synthetic_stream(n_steps=8, total=8, with_end=True)
        )
        assert "finished: 8 steps, verdict OK" in text
        assert "ETA" not in text

    def test_empty_stream(self):
        text = render_monitor({"manifest": None, "steps": [], "end": None})
        assert "waiting for first step" in text

    def test_exit_status(self):
        assert monitor_exit_status(synthetic_stream()) == 0
        assert monitor_exit_status(synthetic_stream(crit=True)) == 2
        assert monitor_exit_status(
            synthetic_stream(with_end=True, crit=True)
        ) == 2

    def test_pick_imbalance_prefers_particles(self):
        steps = [{
            "imbalance": {"comm_bytes": 2.0, "particles": 1.2},
        }]
        name, series = pick_imbalance_series(steps)
        assert name == "particles"
        assert series == [1.2]

    def test_pick_imbalance_empty(self):
        assert pick_imbalance_series([]) == ("", [])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_monitor_renders_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "run.jsonl"
        stream = RunStream(path, manifest={"config_hash": "abc", "n_steps": 1})
        tel = Telemetry(stream=stream)
        tel.record_step(0, 0.5, 1.0)
        tel.finish(verdict="OK")
        assert main(["monitor", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run abc" in out
        assert "verdict OK" in out

    def test_monitor_crit_stream_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "run.jsonl"
        stream = RunStream(path)
        tel = Telemetry(stream=stream)
        tel.record_step(
            0, 0.5, 1.0,
            alerts=[{"severity": "CRIT", "check": "energy_residual",
                     "message": "boom"}],
        )
        tel.finish(verdict="CRIT")
        assert main(["monitor", str(path)]) == 2

    @pytest.mark.slow
    def test_demo_telemetry_health_end_to_end(self, tmp_path, capsys):
        """demo --telemetry --health-energy-crit: stream + exit status."""
        from repro.__main__ import main

        path = tmp_path / "run.jsonl"
        rc = main([
            "-q", "demo", "--steps", "2", "--n-per-dim", "8",
            "--backend", "pm", "--telemetry", str(path),
            "--health-energy-crit", "1e-9",
        ])
        assert rc == 2
        data = read_stream(path)
        assert len(data["steps"]) == 2
        assert data["end"]["verdict"] == "CRIT"
        assert any(
            al["severity"] == "CRIT"
            for s in data["steps"] for al in s["alerts"]
        )
        # the same stream drives the monitor to the same conclusion
        assert main(["monitor", str(path)]) == 2
