"""Tests for the TreePM / P3M / direct short-range backends."""

import numpy as np
import pytest

from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import (
    DirectShortRange,
    P3MShortRange,
    TreePMShortRange,
    periodic_ghosts,
)


@pytest.fixture()
def kernel(grid_force_fit):
    return ShortRangeKernel(grid_force_fit, spacing=1.0, eps_cells=0.0)


class TestPeriodicGhosts:
    def test_originals_come_first(self, rng):
        pos = rng.uniform(0, 10.0, (50, 3))
        m = np.ones(50)
        gp, gm = periodic_ghosts(pos, m, 10.0, 2.0)
        assert np.allclose(gp[:50], pos)
        assert gp.shape[0] >= 50

    def test_ghost_count_matches_shell_volume(self, rng):
        """Fraction of ghosts ~ ((L+2r)^3 - L^3)/L^3 for uniform points."""
        box, r = 10.0, 1.0
        pos = rng.uniform(0, box, (20000, 3))
        gp, _ = periodic_ghosts(pos, np.ones(20000), box, r)
        frac = (gp.shape[0] - 20000) / 20000
        expected = ((box + 2 * r) ** 3 - box**3) / box**3
        assert frac == pytest.approx(expected, rel=0.05)

    def test_ghosts_outside_box(self, rng):
        pos = rng.uniform(0, 10.0, (200, 3))
        gp, _ = periodic_ghosts(pos, np.ones(200), 10.0, 2.0)
        ghosts = gp[200:]
        outside = np.any((ghosts < 0) | (ghosts >= 10.0), axis=1)
        assert np.all(outside)

    def test_corner_particle_has_seven_images(self):
        pos = np.array([[0.1, 0.1, 0.1]])
        gp, _ = periodic_ghosts(pos, np.ones(1), 10.0, 1.0)
        assert gp.shape[0] == 8  # original + 7 images

    def test_rcut_validation(self):
        with pytest.raises(ValueError):
            periodic_ghosts(np.zeros((1, 3)), np.ones(1), 10.0, 6.0)
        with pytest.raises(ValueError):
            periodic_ghosts(np.zeros((1, 3)), np.ones(1), 0.0, 1.0)


class TestBackendAgreement:
    """All backends implement the same force — the paper's multi-algorithm
    cross-validation strategy."""

    @pytest.fixture()
    def system(self, rng):
        pos = rng.uniform(0, 12.0, (400, 3))
        m = rng.uniform(0.5, 1.5, 400)
        return pos, m

    def test_tree_matches_direct_open(self, kernel, system):
        pos, m = system
        a = DirectShortRange(kernel).accelerations(pos, m)
        b = TreePMShortRange(kernel, leaf_size=24).accelerations(pos, m)
        assert np.allclose(a, b, atol=1e-11)

    def test_p3m_matches_direct_open(self, kernel, system):
        pos, m = system
        a = DirectShortRange(kernel).accelerations(pos, m)
        b = P3MShortRange(kernel).accelerations(pos, m)
        assert np.allclose(a, b, atol=1e-11)

    def test_tree_matches_direct_periodic(self, kernel, system):
        pos, m = system
        a = DirectShortRange(kernel).accelerations(pos, m, box_size=12.0)
        b = TreePMShortRange(kernel, leaf_size=24).accelerations(
            pos, m, box_size=12.0
        )
        assert np.allclose(a, b, atol=1e-11)

    def test_p3m_matches_direct_periodic(self, kernel, system):
        pos, m = system
        a = DirectShortRange(kernel).accelerations(pos, m, box_size=12.0)
        b = P3MShortRange(kernel).accelerations(pos, m, box_size=12.0)
        assert np.allclose(a, b, atol=1e-11)

    @pytest.mark.parametrize("leaf_size", [1, 8, 64, 512])
    def test_tree_invariant_under_leaf_size(self, kernel, system, leaf_size):
        """Fat leaves change performance, never the answer."""
        pos, m = system
        ref = DirectShortRange(kernel).accelerations(pos, m)
        out = TreePMShortRange(kernel, leaf_size=leaf_size).accelerations(
            pos, m
        )
        assert np.allclose(ref, out, atol=1e-11)

    def test_clustered_distribution(self, kernel, rng):
        """Agreement holds in the clustered regime where tree pruning is
        actually exercised."""
        centers = rng.uniform(2, 10, (5, 3))
        pos = np.concatenate(
            [c + 0.3 * rng.standard_normal((80, 3)) for c in centers]
        )
        m = np.ones(len(pos))
        a = DirectShortRange(kernel).accelerations(pos, m)
        b = TreePMShortRange(kernel, leaf_size=32).accelerations(pos, m)
        c = P3MShortRange(kernel).accelerations(pos, m)
        assert np.allclose(a, b, atol=1e-11)
        assert np.allclose(a, c, atol=1e-11)


class TestPhysicalProperties:
    def test_momentum_conservation(self, kernel, rng):
        pos = rng.uniform(0, 8.0, (200, 3))
        m = rng.uniform(0.5, 2.0, 200)
        acc = TreePMShortRange(kernel, leaf_size=16).accelerations(pos, m)
        net = (m[:, None] * acc).sum(axis=0)
        assert np.abs(net).max() < 1e-10

    def test_periodic_translation_invariance(self, kernel, rng):
        pos = rng.uniform(0, 8.0, (100, 3))
        m = np.ones(100)
        solver = TreePMShortRange(kernel, leaf_size=16)
        a = solver.accelerations(pos, m, box_size=8.0)
        shifted = np.mod(pos + np.array([3.0, 0.0, 0.0]), 8.0)
        b = solver.accelerations(shifted, m, box_size=8.0)
        assert np.allclose(a, b, atol=1e-10)

    def test_force_across_periodic_seam(self, kernel):
        """Two particles separated only through the boundary attract."""
        pos = np.array([[0.2, 4.0, 4.0], [7.8, 4.0, 4.0]])  # 0.4 apart
        m = np.ones(2)
        acc = DirectShortRange(kernel).accelerations(pos, m, box_size=8.0)
        assert acc[0, 0] < 0  # pulled across the low face
        assert acc[1, 0] > 0

    def test_no_force_beyond_cutoff(self, kernel):
        pos = np.array([[1.0, 1.0, 1.0], [5.0, 5.0, 5.0]])  # r ~ 6.9 > 3
        acc = DirectShortRange(kernel).accelerations(pos, np.ones(2))
        assert np.abs(acc).max() == 0.0

    def test_interaction_list_sizes_recorded(self, kernel, rng):
        pos = rng.uniform(0, 8.0, (300, 3))
        solver = TreePMShortRange(kernel, leaf_size=16)
        solver.accelerations(pos, np.ones(300))
        assert solver.last_list_sizes is not None
        assert solver.last_list_sizes.min() >= 16

    def test_leaf_size_validation(self, kernel):
        with pytest.raises(ValueError):
            TreePMShortRange(kernel, leaf_size=0)
