"""Property-based tests (hypothesis) for core data structures and
invariants: FFT round trips, CIC conservation/adjointness, RCB partition
invariants, overloading conservation, FOF percolation monotonicity, and
torus metric axioms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fft.local import fft1d, ifft1d
from repro.grid.cic import cic_deposit, cic_interpolate
from repro.parallel.comm import SimulatedComm
from repro.parallel.decomposition import DomainDecomposition, balanced_dims
from repro.parallel.overload import OverloadExchange
from repro.parallel.topology import TorusTopology
from repro.shortrange.rcb_tree import RCBTree
from repro.analysis.halos import fof_halos

# reusable strategies -------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def complex_arrays(max_n=96):
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: arrays(
            np.float64,
            (2, n),
            elements=finite_floats,
        ).map(lambda a: a[0] + 1j * a[1])
    )


def positions(max_n=200, box=10.0):
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: arrays(
            np.float64,
            (n, 3),
            elements=st.floats(
                min_value=0.0,
                max_value=box,
                exclude_max=True,
                allow_nan=False,
            ),
        )
    )


class TestFFTProperties:
    @given(x=complex_arrays())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, x):
        assert np.allclose(
            ifft1d(fft1d(x)), x, atol=1e-8 * (1 + np.abs(x).max())
        )

    @given(x=complex_arrays())
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy(self, x):
        assert np.allclose(
            fft1d(x), np.fft.fft(x), atol=1e-8 * (1 + np.abs(x).max())
        )

    @given(x=complex_arrays(), shift=st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_shift_theorem(self, x, shift):
        """Circular shift in real space is a phase ramp in k-space."""
        n = x.shape[-1]
        s = shift % n
        lhs = fft1d(np.roll(x, s, axis=-1))
        k = np.arange(n)
        rhs = fft1d(x) * np.exp(-2j * np.pi * k * s / n)
        assert np.allclose(lhs, rhs, atol=1e-7 * (1 + np.abs(x).max()))

    @given(x=complex_arrays())
    @settings(max_examples=25, deadline=None)
    def test_parseval(self, x):
        n = x.shape[-1]
        lhs = float(np.sum(np.abs(x) ** 2))
        rhs = float(np.sum(np.abs(fft1d(x)) ** 2)) / n
        assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)


class TestCICProperties:
    @given(pos=positions())
    @settings(max_examples=30, deadline=None)
    def test_mass_conserved(self, pos):
        grid = cic_deposit(pos, 8, 10.0)
        assert grid.sum() == pytest.approx(pos.shape[0], rel=1e-9)

    @given(pos=positions())
    @settings(max_examples=30, deadline=None)
    def test_deposit_nonnegative(self, pos):
        assert np.all(cic_deposit(pos, 8, 10.0) >= 0)

    @given(pos=positions(max_n=60), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_adjointness(self, pos, data):
        rng = np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31))
        )
        g = rng.standard_normal((8, 8, 8))
        w = rng.uniform(0.5, 2.0, pos.shape[0])
        lhs = float(np.sum(cic_deposit(pos, 8, 10.0, w) * g))
        rhs = float(np.sum(w * cic_interpolate(g, pos, 10.0)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @given(
        pos=positions(max_n=50),
        shift=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_translation_covariance_by_cells(self, pos, shift):
        """Shifting all particles by an integer number of cells rolls
        the deposited grid."""
        n, box = 8, 10.0
        cells = int(shift) % n
        delta = cells * (box / n)
        a = cic_deposit(pos, n, box)
        b = cic_deposit(np.mod(pos + [delta, 0, 0], box), n, box)
        assert np.allclose(np.roll(a, cells, axis=0), b, atol=1e-9)


class TestRCBProperties:
    @given(pos=positions(max_n=300), leaf=st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_partition_invariants(self, pos, leaf):
        tree = RCBTree(pos, leaf_size=leaf)
        # permutation property
        assert np.array_equal(np.sort(tree.perm), np.arange(pos.shape[0]))
        # leaves partition the particles
        total = sum(tree.node(l).count for l in tree.leaves())
        assert total == pos.shape[0]
        # reordering consistent
        assert np.allclose(tree.positions, pos[tree.perm])

    @given(pos=positions(max_n=200))
    @settings(max_examples=15, deadline=None)
    def test_sibling_disjointness_along_split(self, pos):
        tree = RCBTree(pos, leaf_size=16)
        for i in range(tree.n_nodes):
            node = tree.node(i)
            if node.is_leaf:
                continue
            l, r = tree.node(node.left), tree.node(node.right)
            # children tile the parent slice
            assert l.count + r.count == node.count
            # children bboxes nest inside the parent's
            assert np.all(l.lo >= node.lo - 1e-12)
            assert np.all(r.hi <= node.hi + 1e-12)


class TestOverloadProperties:
    @given(
        pos=positions(max_n=150, box=40.0),
        depth=st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_conservation_and_roles(self, pos, depth):
        decomp = DomainDecomposition(40.0, (2, 2, 1))
        ex = OverloadExchange(decomp, depth)
        mom = np.zeros_like(pos)
        domains = ex.distribute(pos, mom)
        ids = np.concatenate([d.ids[d.active] for d in domains])
        assert len(ids) == pos.shape[0]
        assert len(np.unique(ids)) == pos.shape[0]
        # refresh is idempotent on a static distribution
        again = ex.refresh(domains)
        for a, b in zip(domains, again):
            assert a.n_active == b.n_active
            assert a.n_passive == b.n_passive


class TestCommProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=20), min_size=4, max_size=4
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_alltoall_byte_accounting(self, sizes):
        comm = SimulatedComm(2)
        send = [
            [np.zeros(sizes[0]), np.zeros(sizes[1])],
            [np.zeros(sizes[2]), np.zeros(sizes[3])],
        ]
        comm.alltoallv(send)
        # only off-diagonal payloads are charged
        expected = (sizes[1] + sizes[2]) * 8
        assert comm.stats.bytes == expected


class TestTorusProperties:
    @given(
        dims=st.lists(
            st.integers(min_value=1, max_value=6), min_size=1, max_size=4
        ),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_metric_axioms(self, dims, data):
        t = TorusTopology(tuple(dims))
        n = t.n_nodes
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        c = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert t.hops(a, a) == 0
        assert t.hops(a, b) == t.hops(b, a)
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
        assert t.hops(a, b) <= t.diameter


class TestBalancedDimsProperties:
    @given(n=st.integers(min_value=1, max_value=100000))
    @settings(max_examples=60, deadline=None)
    def test_product_preserved(self, n):
        dims = balanced_dims(n)
        assert int(np.prod(dims)) == n


class TestFOFProperties:
    @given(pos=positions(max_n=120, box=20.0))
    @settings(max_examples=15, deadline=None)
    def test_linking_length_monotonicity(self, pos):
        """Larger linking length can only merge groups: the number of
        groups (incl. singletons) is non-increasing in the linking
        length."""
        counts = []
        for ll in (0.5, 1.0, 2.0):
            cat = fof_halos(
                np.mod(pos, 20.0), 20.0, linking_length=ll, min_members=1
            )
            counts.append(cat.n_halos)
        assert counts[0] >= counts[1] >= counts[2]
