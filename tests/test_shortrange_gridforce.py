"""Tests for the grid-force measurement / polynomial-fit pipeline."""

import numpy as np
import pytest

from repro.shortrange.grid_force import (
    GridForceFit,
    default_grid_force_fit,
    fit_grid_force,
    measure_grid_force,
    pair_force_normalization,
)


class TestNormalization:
    def test_value(self):
        # V / (4 pi Np)
        assert pair_force_normalization(10.0, 1000) == pytest.approx(
            1000.0 / (4 * np.pi * 1000)
        )

    def test_rejects_zero_particles(self):
        with pytest.raises(ValueError):
            pair_force_normalization(10.0, 0)


class TestMeasurement:
    @pytest.fixture(scope="class")
    def samples(self):
        return measure_grid_force(
            32, n_sources=8, n_samples_per_source=200, seed=5
        )

    def test_sample_counts(self, samples):
        s, fr, ft = samples
        assert s.shape == fr.shape == ft.shape == (1600,)

    def test_newtonian_asymptotics(self, samples):
        """Normalized grid force approaches s^{-3/2} at ~3+ cells."""
        s, fr, _ = samples
        far = (s > 9.0) & (s < 20.0)
        ratio = fr[far] * s[far] ** 1.5
        assert np.median(ratio) == pytest.approx(1.0, abs=0.05)

    def test_short_distance_suppression(self, samples):
        """The filtered grid force is strongly suppressed vs Newton below
        one cell — that deficit IS the short-range force."""
        s, fr, _ = samples
        near = s < 0.5
        assert np.all(fr[near] < 0.5 * s[near] ** -1.5)

    def test_anisotropy_noise_small(self, samples):
        """Transverse component (anisotropy noise) is small relative to
        the radial force — the filter's purpose."""
        s, fr, ft = samples
        mid = (s > 1.0) & (s < 9.0)
        assert np.median(ft[mid] / np.abs(fr[mid])) < 0.1

    def test_filter_reduces_anisotropy(self):
        """Section II: the filter strongly suppresses CIC anisotropy
        noise.  At sub-cell separations (where the anisotropy is worst)
        the transverse force component drops by several-fold even against
        a baseline that already uses the 6th-order influence function;
        the ablation bench maps the full profile."""
        kwargs = dict(n_sources=6, n_samples_per_source=300, seed=7)
        s_f, _, ft_f = measure_grid_force(32, sigma=0.8, ns=3, **kwargs)
        s_r, _, ft_r = measure_grid_force(32, sigma=0.0, ns=0, **kwargs)

        def noise(s, ft):
            sel = s < 1.0
            return np.median(ft[sel])

        assert noise(s_f, ft_f) < 0.25 * noise(s_r, ft_r)

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            measure_grid_force(8)

    def test_rmax_vs_grid_checked(self):
        with pytest.raises(ValueError):
            measure_grid_force(16, r_max_cells=8.0)


class TestFit:
    def test_default_fit_properties(self, grid_force_fit):
        assert grid_force_fit.rcut_cells == 3.0
        assert len(grid_force_fit.coefficients) == 6
        assert grid_force_fit.rms_residual < 0.05

    def test_polynomial_evaluation_horner(self):
        fit = GridForceFit((1.0, 2.0, 3.0), 3.0, 0.8, 3, 0.0)
        assert float(fit(2.0)) == pytest.approx(1 + 4 + 12)

    def test_short_range_vanishes_beyond_cutoff(self, grid_force_fit):
        s = np.array([9.1, 16.0, 100.0])
        assert np.all(grid_force_fit.short_range(s) == 0.0)

    def test_short_range_positive_inside(self, grid_force_fit):
        s = np.array([0.25, 1.0, 4.0])
        assert np.all(grid_force_fit.short_range(s) > 0)

    def test_short_range_small_at_handover(self, grid_force_fit):
        """f_SR is a tiny fraction of Newton at the 3-cell handover."""
        s = 8.9
        newton = s**-1.5
        assert grid_force_fit.short_range(s) < 0.05 * newton

    def test_short_range_newtonian_at_small_s(self, grid_force_fit):
        s = 0.01
        assert grid_force_fit.short_range(s) == pytest.approx(
            s**-1.5, rel=0.01
        )

    def test_fit_requires_samples_inside_cut(self):
        with pytest.raises(ValueError):
            fit_grid_force(np.array([100.0, 200.0]), np.array([0.1, 0.2]))

    def test_fit_reproduces_measurement(self):
        s, fr, _ = measure_grid_force(
            32, n_sources=8, n_samples_per_source=200, seed=5
        )
        fit = fit_grid_force(s, fr)
        inside = s < 8.0
        resid = fit(s[inside]) - fr[inside]
        assert np.sqrt(np.mean(resid**2)) < 0.05

    def test_cache_returns_same_object(self):
        a = default_grid_force_fit()
        b = default_grid_force_fit()
        assert a is b
