"""Tests for Gaussian random fields and Zel'dovich/2LPT initial conditions."""

import numpy as np
import pytest

from repro.analysis.power import power_from_delta, matter_power_spectrum
from repro.cosmology.background import WMAP7
from repro.cosmology.gaussian_field import GaussianRandomField, fourier_grid
from repro.cosmology.initial_conditions import make_initial_conditions


class TestFourierGrid:
    def test_shapes_rfft(self):
        kx, ky, kz = fourier_grid(16, 100.0)
        assert kx.shape == (16, 1, 1)
        assert ky.shape == (1, 16, 1)
        assert kz.shape == (1, 1, 9)

    def test_shapes_full(self):
        _, _, kz = fourier_grid(16, 100.0, rfft=False)
        assert kz.shape == (1, 1, 16)

    def test_fundamental_mode(self):
        kx, _, _ = fourier_grid(8, 100.0)
        assert kx[1, 0, 0] == pytest.approx(2 * np.pi / 100.0)

    def test_nyquist(self):
        _, _, kz = fourier_grid(8, 100.0)
        assert kz[0, 0, -1] == pytest.approx(np.pi * 8 / 100.0)

    @pytest.mark.parametrize("bad", [(1, 100.0), (8, 0.0), (8, -5.0)])
    def test_invalid_inputs(self, bad):
        with pytest.raises(ValueError):
            fourier_grid(*bad)


class TestGaussianRandomField:
    def test_field_is_real_and_mean_free(self):
        grf = GaussianRandomField(16, 100.0, lambda k: 0 * k + 10.0, seed=1)
        delta = grf.realize()
        assert delta.dtype == np.float64
        assert abs(delta.mean()) < 1e-12

    def test_reproducible(self):
        kwargs = dict(n=16, box_size=50.0, power=lambda k: 0 * k + 1.0)
        a = GaussianRandomField(seed=3, **kwargs).realize()
        b = GaussianRandomField(seed=3, **kwargs).realize()
        assert np.array_equal(a, b)

    def test_seed_changes_realization(self):
        kwargs = dict(n=16, box_size=50.0, power=lambda k: 0 * k + 1.0)
        a = GaussianRandomField(seed=3, **kwargs).realize()
        b = GaussianRandomField(seed=4, **kwargs).realize()
        assert not np.allclose(a, b)

    def test_power_spectrum_roundtrip(self, linear_power):
        """Estimator recovers the input spectrum within sample variance."""
        n, box = 32, 400.0
        grf = GaussianRandomField(n, box, lambda k: linear_power(k), seed=9)
        delta = grf.realize()
        ps = power_from_delta(delta, box)
        expected = linear_power(ps.k)
        # relative sample error per bin ~ sqrt(2/n_modes)
        err = np.sqrt(2.0 / ps.n_modes)
        pull = (ps.power - expected) / (expected * err)
        assert np.mean(np.abs(pull)) < 2.0

    def test_variance_scales_with_power(self):
        lo = GaussianRandomField(16, 50.0, lambda k: 0 * k + 1.0, seed=5)
        hi = GaussianRandomField(16, 50.0, lambda k: 0 * k + 4.0, seed=5)
        assert hi.realize().var() == pytest.approx(4 * lo.realize().var())

    def test_amplitude_zero_mode_removed(self):
        grf = GaussianRandomField(8, 10.0, lambda k: 0 * k + 1.0)
        assert grf.amplitude_k()[0, 0, 0] == 0.0

    def test_negative_power_clipped(self):
        grf = GaussianRandomField(8, 10.0, lambda k: 0 * k - 1.0, seed=0)
        assert np.all(np.isfinite(grf.realize()))


class TestInitialConditions:
    def test_shapes_and_bounds(self):
        ics = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=25.0, seed=1
        )
        assert ics.positions.shape == (512, 3)
        assert ics.momenta.shape == (512, 3)
        assert np.all(ics.positions >= 0)
        assert np.all(ics.positions < 100.0)
        assert ics.a_init == pytest.approx(1 / 26)

    def test_displacements_small_at_high_z(self):
        ics = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=200.0, seed=1
        )
        spacing = 100.0 / 8
        lattice = np.arange(8) * spacing
        qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
        q = np.stack([qx.ravel(), qy.ravel(), qz.ravel()], axis=1)
        d = ics.positions - q
        d -= 100.0 * np.round(d / 100.0)
        assert np.sqrt((d**2).sum(1)).max() < spacing

    def test_momenta_scale_with_growth(self):
        """p = a^2 E f D psi: the z=200 start has much colder momenta."""
        hot = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=25.0, seed=2
        )
        cold = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=200.0, seed=2
        )
        assert cold.momenta.std() < hot.momenta.std()

    def test_ic_power_matches_linear_theory(self, linear_power):
        n, box = 32, 300.0
        ics = make_initial_conditions(
            WMAP7,
            n_per_dim=n,
            box_size=box,
            z_init=25.0,
            seed=11,
            power=linear_power,
        )
        ps = matter_power_spectrum(
            ics.positions, box, n, subtract_shot_noise=False
        )
        d = WMAP7.growth_factor(ics.a_init)
        expected = linear_power(ps.k) * d * d
        # compare the low-k third of the bins (Zel'dovich is linear there)
        m = len(ps.k) // 3
        ratio = ps.power[:m] / expected[:m]
        assert np.all(ratio > 0.6)
        assert np.all(ratio < 1.6)
        assert np.mean(ratio) == pytest.approx(1.0, abs=0.2)

    def test_momenta_align_with_growing_mode(self):
        """Momenta parallel to displacements (growing mode, not decaying)."""
        ics = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=25.0, seed=3
        )
        spacing = 100.0 / 8
        lattice = np.arange(8) * spacing
        qx, qy, qz = np.meshgrid(lattice, lattice, lattice, indexing="ij")
        q = np.stack([qx.ravel(), qy.ravel(), qz.ravel()], axis=1)
        d = ics.positions - q
        d -= 100.0 * np.round(d / 100.0)
        cos = np.einsum("ij,ij->i", d, ics.momenta) / (
            np.linalg.norm(d, axis=1) * np.linalg.norm(ics.momenta, axis=1)
        )
        assert np.all(cos > 0.999)

    def test_2lpt_close_to_zeldovich_at_high_z(self):
        za = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=100.0, seed=4, order=1
        )
        two = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=100.0, seed=4, order=2
        )
        d = za.positions - two.positions
        d -= 100.0 * np.round(d / 100.0)
        # 2LPT correction is second order in the (tiny) displacement
        assert np.abs(d).max() < 0.05 * (100.0 / 8)

    def test_2lpt_differs_at_low_z(self):
        za = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=5.0, seed=4, order=1
        )
        two = make_initial_conditions(
            WMAP7, n_per_dim=8, box_size=100.0, z_init=5.0, seed=4, order=2
        )
        assert not np.allclose(za.positions, two.positions)

    @pytest.mark.parametrize("kwargs", [{"order": 3}, {"z_init": 0.0}, {"z_init": -1.0}])
    def test_invalid_inputs(self, kwargs):
        base = dict(n_per_dim=8, box_size=100.0)
        with pytest.raises(ValueError):
            make_initial_conditions(WMAP7, **{**base, **kwargs})
