"""Tests for the Section IV.B instruction-mix / roofline model."""

import pytest

from repro.machine.roofline import InstructionMixModel


class TestInstructionMix:
    @pytest.fixture()
    def model(self):
        return InstructionMixModel()

    def test_max_ipc_matches_paper(self, model):
        """'the maximal possible throughput is 100/56.10 = 1.783
        instructions/cycle'."""
        assert model.max_instructions_per_cycle() == pytest.approx(
            1.783, abs=0.001
        )

    def test_issue_efficiency_85_percent(self, model):
        """'the actual instructions/cycle completed per core is 1.508,
        85% of the possible issue rate'."""
        assert model.issue_efficiency() == pytest.approx(0.85, abs=0.01)

    def test_fxu_heavy_mix_bound_by_fxu(self):
        m = InstructionMixModel(fpu_fraction=0.3)
        assert m.max_instructions_per_cycle() == pytest.approx(1.0 / 0.7)

    def test_balanced_mix_reaches_two(self):
        m = InstructionMixModel(fpu_fraction=0.5)
        assert m.max_instructions_per_cycle() == pytest.approx(2.0)

    def test_sustained_gflops_round_trip(self, model):
        """Implied flops/FPU-instruction reproduces the 142.32 GFlops
        node counter, and lies between the 4-flop and 8-flop QPX ops."""
        f = model.implied_flops_per_fpu_instruction(142.32)
        assert 4.0 < f < 8.0
        assert model.sustained_node_gflops(f) == pytest.approx(142.32)

    def test_counter_consistency_with_peak_fraction(self, model):
        """142.32 of 204.8 GFlops = 69.5% — the Section IV.B number."""
        assert 142.32 / model.node.flops_per_node_peak * 1e9 == pytest.approx(
            0.695, abs=0.001
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionMixModel(fpu_fraction=0.0)
        with pytest.raises(ValueError):
            InstructionMixModel(instructions_per_cycle=0.0)
        with pytest.raises(ValueError):
            InstructionMixModel().sustained_node_gflops(0.0)


class TestRoofline:
    def test_compute_bound(self):
        """'The memory bandwidth is very low: 0.344 B/cycle out of a
        measured peak of 18 B/cycle; this testifies to the very high rate
        of data reuse' — HACC sits deep in the compute-bound region."""
        m = InstructionMixModel()
        point = m.roofline()
        assert not point.memory_bound
        assert point.arithmetic_intensity > 100  # flops per byte

    def test_bandwidth_headroom(self):
        m = InstructionMixModel()
        assert m.bandwidth_headroom() == pytest.approx(18.0 / 0.344, rel=1e-6)

    def test_memory_bound_scenario(self):
        """A hypothetical streaming code (1 flop/8 bytes) at the same
        flop rate would be memory bound — the contrast that makes the
        paper's byte/flop argument for future machines."""
        m = InstructionMixModel(memory_bytes_per_cycle=720.0)  # would-be need
        point = m.roofline()
        assert point.arithmetic_intensity < 1.0
        assert point.memory_bound

    def test_summary_keys(self):
        s = InstructionMixModel().summary()
        assert set(s) == {
            "fpu_fraction",
            "max_ipc",
            "measured_ipc",
            "issue_efficiency",
            "l1_hit_rate",
            "bandwidth_headroom",
            "flops_per_fpu_instruction",
        }
