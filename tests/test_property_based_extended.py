"""Property-based tests for the extension modules: rendering, emulation
design, Vlasov conservation, correlation estimator bookkeeping, torus
mapping and the threaded CIC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.correlation import pair_correlation
from repro.analysis.render import apply_colormap, log_stretch, read_ppm, write_ppm
from repro.cosmology.emulator import ParameterBox, latin_hypercube
from repro.grid.cic import cic_deposit
from repro.grid.threaded_cic import ThreadedCIC
from repro.shortrange.multitree import rcb_blocks
from repro.vlasov import SheetModel


class TestRenderProperties:
    @given(
        data=arrays(
            np.float64,
            (6, 6),
            elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_log_stretch_range(self, data):
        out = log_stretch(data)
        assert np.all(out >= 0)
        assert np.all(out <= 1)

    @given(
        img=arrays(
            np.uint8,
            (4, 5, 3),
            elements=st.integers(min_value=0, max_value=255),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_ppm_roundtrip(self, img, tmp_path_factory):
        d = tmp_path_factory.mktemp("ppm")
        back = read_ppm(write_ppm(d / "x", img))
        assert np.array_equal(back, img)

    @given(
        x=arrays(
            np.float64,
            (8,),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_colormap_monotone_brightness(self, x):
        """Grayscale colormap brightness is monotone in the input."""
        order = np.argsort(x)
        rgb = apply_colormap(x, "gray").astype(int)
        brightness = rgb.sum(axis=-1)
        assert np.all(np.diff(brightness[order]) >= 0)


class TestEmulatorDesignProperties:
    @given(
        n=st.integers(min_value=2, max_value=40),
        dim=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_latin_hypercube_stratified(self, n, dim, seed):
        pts = latin_hypercube(n, dim, seed=seed)
        for d in range(dim):
            strata = np.floor(pts[:, d] * n).astype(int)
            assert np.array_equal(np.sort(strata), np.arange(n))

    @given(
        u=arrays(
            np.float64,
            (3,),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_box_normalize_roundtrip(self, u):
        box = ParameterBox()
        p = box.denormalize(u)
        assert np.allclose(box.normalize(p), u, atol=1e-12)
        assert box.contains(p)


class TestVlasovProperties:
    @given(
        amp=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_sheet_momentum_conserved(self, amp, seed):
        rng = np.random.default_rng(seed)
        sm = SheetModel(
            rng.uniform(0, 1, 64),
            amp * rng.standard_normal(64),
            1.0,
        )
        p0 = sm.v.sum()
        sm.run(0.5, 0.05)
        assert sm.v.sum() == pytest.approx(p0, abs=1e-9)

    @given(n=st.integers(min_value=8, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_sheet_lattice_equilibrium(self, n):
        sm = SheetModel.cold_perturbation(n, 1.0, 0.0)
        assert np.abs(sm.acceleration()).max() < 1e-10


class TestCorrelationProperties:
    @given(
        n=st.integers(min_value=10, max_value=80),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_pair_counts_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 10.0, (n, 3))
        cf = pair_correlation(pos, 10.0, r_min=0.5, r_max=4.0, n_bins=4)
        assert cf.pair_counts.sum() <= n * (n - 1) // 2
        assert np.all(cf.pair_counts >= 0)


class TestThreadedCICProperties:
    @given(
        workers=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_privatize_exactness(self, workers, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 8.0, (200, 3))
        serial = cic_deposit(pos, 8, 8.0)
        threaded = ThreadedCIC(workers, "privatize").deposit(pos, 8, 8.0)
        assert np.allclose(threaded, serial, atol=1e-12)


class TestRCBBlockProperties:
    @given(
        n=st.integers(min_value=1, max_value=300),
        log_blocks=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_blocks_partition_and_balance(self, n, log_blocks, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 1, (n, 3))
        n_blocks = 2**log_blocks
        blocks = rcb_blocks(pos, np.ones(n), n_blocks)
        combined = np.concatenate(blocks) if blocks else np.empty(0)
        assert np.array_equal(np.sort(combined), np.arange(n))
        counts = [b.size for b in blocks]
        if n >= n_blocks:
            assert max(counts) - min(counts) <= max(1, n_blocks // 2)
