"""Tests for repro.cosmology.background (FLRW expansion and growth)."""

import math

import numpy as np
import pytest

from repro.cosmology.background import WMAP7, Cosmology


class TestConstruction:
    def test_defaults_are_flat(self):
        c = Cosmology()
        assert c.omega_de == pytest.approx(1.0 - c.omega_m)

    def test_omega_cdm(self):
        c = Cosmology(omega_m=0.3, omega_b=0.05)
        assert c.omega_cdm == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"omega_m": 0.0},
            {"omega_m": -0.1},
            {"omega_m": 0.3, "omega_b": 0.4},
            {"h": 0.0},
            {"h": -1.0},
            {"sigma8": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Cosmology(**kwargs)

    def test_with_replaces_fields(self):
        c = WMAP7.with_(sigma8=0.9)
        assert c.sigma8 == 0.9
        assert c.omega_m == WMAP7.omega_m


class TestExpansion:
    def test_efunc_today_is_one(self):
        assert float(WMAP7.efunc(1.0)) == pytest.approx(1.0)

    def test_efunc_matter_era_scaling(self):
        # deep in matter domination E ~ sqrt(Om) a^-1.5
        a = 1e-3
        expected = math.sqrt(WMAP7.omega_m) * a**-1.5
        assert float(WMAP7.efunc(a)) == pytest.approx(expected, rel=1e-3)

    def test_efunc_vectorized(self):
        a = np.array([0.1, 0.5, 1.0])
        e = WMAP7.efunc(a)
        assert e.shape == (3,)
        assert np.all(np.diff(e) < 0)  # E decreases toward today

    def test_efunc_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WMAP7.efunc(0.0)

    def test_hubble_units(self):
        assert float(WMAP7.hubble(1.0)) == pytest.approx(100.0 * WMAP7.h)

    def test_de_density_cosmological_constant_is_flat(self):
        c = Cosmology(w0=-1.0, wa=0.0)
        a = np.array([0.1, 0.5, 1.0])
        assert np.allclose(c.de_density_evolution(a), 1.0)

    def test_de_density_cpl_at_unity(self):
        c = Cosmology(w0=-0.9, wa=0.3)
        assert float(c.de_density_evolution(1.0)) == pytest.approx(1.0)

    def test_dlnE_dlna_matches_numerical(self):
        a = 0.5
        eps = 1e-6
        num = (
            math.log(float(WMAP7.efunc(a * (1 + eps))))
            - math.log(float(WMAP7.efunc(a * (1 - eps))))
        ) / (2 * eps)
        assert float(WMAP7.dlnE_dlna(a)) == pytest.approx(num, rel=1e-6)

    def test_omega_m_a_limits(self):
        assert float(WMAP7.omega_m_a(1.0)) == pytest.approx(WMAP7.omega_m)
        assert float(WMAP7.omega_m_a(1e-3)) == pytest.approx(1.0, abs=2e-3)


class TestGrowth:
    def test_eds_growth_equals_a(self):
        eds = Cosmology(omega_m=1.0, omega_b=0.05, w0=-1.0)
        for a in (0.1, 0.25, 0.5, 1.0):
            assert eds.growth_factor(a, normalized=False) == pytest.approx(
                a, rel=1e-6
            )

    def test_normalized_growth_is_one_today(self):
        assert WMAP7.growth_factor(1.0) == pytest.approx(1.0)

    def test_growth_monotone(self):
        a = np.linspace(0.05, 1.0, 20)
        d = WMAP7.growth_factor(a)
        assert np.all(np.diff(d) > 0)

    def test_lcdm_growth_suppressed_vs_eds(self):
        # dark energy suppresses late-time growth: D(a)/a < D(1)/1 scaled
        d_raw = WMAP7.growth_factor(1.0, normalized=False)
        assert d_raw < 1.0  # D(1) < a=1 under the matter-era normalization

    def test_growth_rate_approximation(self):
        # f ~= Omega_m(a)^0.55 for LCDM to ~1%
        for a in (0.3, 0.5, 1.0):
            om = float(WMAP7.omega_m_a(a))
            assert WMAP7.growth_rate(a) == pytest.approx(om**0.55, rel=0.02)

    def test_growth_rate_eds_is_one(self):
        eds = Cosmology(omega_m=1.0, omega_b=0.05)
        assert eds.growth_rate(0.5) == pytest.approx(1.0, rel=1e-6)

    def test_growth_rejects_future(self):
        with pytest.raises(ValueError):
            WMAP7.growth_factor(1.5)

    def test_growth_vector_matches_scalar(self):
        a = np.array([0.2, 0.6, 1.0])
        vec = WMAP7.growth_factor(a)
        for ai, di in zip(a, vec):
            assert WMAP7.growth_factor(float(ai)) == pytest.approx(di)

    def test_wcdm_growth_differs_from_lcdm(self):
        w = Cosmology(w0=-0.8, wa=0.0)
        assert w.growth_factor(0.5) != pytest.approx(
            WMAP7.growth_factor(0.5), rel=1e-3
        )


class TestDistances:
    def test_comoving_distance_zero(self):
        assert WMAP7.comoving_distance(0.0) == 0.0

    def test_comoving_distance_small_z_hubble_law(self):
        z = 0.01
        dh = 2997.92458  # c/H0 in Mpc/h
        assert WMAP7.comoving_distance(z) == pytest.approx(dh * z, rel=0.01)

    def test_comoving_distance_monotone(self):
        d1 = WMAP7.comoving_distance(0.5)
        d2 = WMAP7.comoving_distance(1.0)
        assert d2 > d1 > 0

    def test_survey_depth_is_gpc_scale(self):
        # Section I: survey depths are of order a few Gpc
        assert 2000.0 < WMAP7.comoving_distance(1.0) < 4000.0

    def test_negative_redshift_rejected(self):
        with pytest.raises(ValueError):
            WMAP7.comoving_distance(-0.1)

    def test_lookback_time_bounds(self):
        t = WMAP7.lookback_time(1.0)
        assert 0 < t < 1.0  # less than a Hubble time


class TestScaleFactorHelpers:
    def test_a_of_z_roundtrip(self):
        z = np.array([0.0, 0.5, 24.0])
        assert np.allclose(Cosmology.z_of_a(Cosmology.a_of_z(z)), z)

    def test_paper_initial_redshift(self):
        # benchmark runs start at z_in = 25
        assert float(Cosmology.a_of_z(25.0)) == pytest.approx(1.0 / 26.0)
