"""Tests for the P(k) emulator and the density-field renderer."""

import numpy as np
import pytest

from repro.analysis.render import (
    COLORMAPS,
    apply_colormap,
    log_stretch,
    read_ppm,
    render_density,
    write_ppm,
)
from repro.cosmology.emulator import (
    ParameterBox,
    PowerSpectrumEmulator,
    latin_hypercube,
)


class TestLatinHypercube:
    def test_stratification(self):
        """Exactly one point per stratum per dimension — the defining
        property."""
        n = 16
        pts = latin_hypercube(n, 3, seed=2)
        for d in range(3):
            strata = np.floor(pts[:, d] * n).astype(int)
            assert np.array_equal(np.sort(strata), np.arange(n))

    def test_deterministic(self):
        assert np.array_equal(
            latin_hypercube(8, 2, seed=5), latin_hypercube(8, 2, seed=5)
        )

    def test_in_unit_cube(self):
        pts = latin_hypercube(20, 4, seed=0)
        assert np.all(pts > 0) and np.all(pts < 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            latin_hypercube(1, 3)


class TestParameterBox:
    def test_normalize_roundtrip(self):
        box = ParameterBox()
        p = np.array([0.27, 0.8, -1.0])
        assert np.allclose(box.denormalize(box.normalize(p)), p)

    def test_contains(self):
        box = ParameterBox()
        assert box.contains(np.array([0.27, 0.8, -1.0]))
        assert not box.contains(np.array([0.5, 0.8, -1.0]))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ParameterBox(omega_m=(0.3, 0.3))


@pytest.mark.slow
class TestEmulator:
    """One emulator instance per module: training runs the forward model
    24 times (~15 s with HALOFIT)."""

    @pytest.fixture(scope="class")
    def emulator(self):
        return PowerSpectrumEmulator(n_design=20, seed=3)

    def test_training_residual_subpercent(self, emulator):
        assert emulator.training_rms.max() < 0.02

    def test_validation_error_percent_level(self, emulator):
        """The Cosmic Calibration accuracy class: ~1% on P(k)."""
        errs = emulator.validate(n_test=4, seed=7)
        assert errs.max() < 0.03

    def test_reproduces_design_point(self, emulator):
        params = emulator.design[0]
        pred = emulator(*params)
        true = emulator.truth(*params)
        assert np.allclose(np.log(pred), np.log(true), atol=0.02)

    def test_sensitivity_directions(self, emulator):
        """More sigma8 -> more power; the headline parameter degeneracy
        directions have the right signs."""
        lo = emulator(0.27, 0.72, -1.0)
        hi = emulator(0.27, 0.88, -1.0)
        assert np.all(hi > lo)

    def test_out_of_box_rejected(self, emulator):
        with pytest.raises(ValueError):
            emulator(0.5, 0.8, -1.0)

    def test_speedup_is_large(self, emulator):
        """The emulator's reason to exist: orders of magnitude faster
        than the forward model."""
        import time

        t0 = time.perf_counter()
        for _ in range(20):
            emulator(0.27, 0.8, -1.0)
        emulated = (time.perf_counter() - t0) / 20
        t0 = time.perf_counter()
        emulator.truth(0.27, 0.8, -1.0)
        forward = time.perf_counter() - t0
        assert forward / emulated > 100

    def test_design_size_validated(self):
        with pytest.raises(ValueError):
            PowerSpectrumEmulator(n_design=5)

    def test_custom_forward_model(self):
        """Pluggable forward model (the simulate-instead-of-halofit hook)."""
        calls = []

        def toy(cosmology, k):
            calls.append(cosmology.sigma8)
            return cosmology.sigma8**2 * k**-1.5

        em = PowerSpectrumEmulator(
            n_design=12, forward=toy, k=np.array([0.1, 1.0]), seed=4
        )
        assert len(calls) == 12
        pred = em(0.27, 0.8, -1.0)
        assert np.allclose(pred, 0.8**2 * np.array([0.1, 1.0]) ** -1.5, rtol=0.02)


class TestRender:
    def test_log_stretch_bounds(self, rng):
        field = rng.uniform(0, 100, (16, 16))
        out = log_stretch(field)
        assert out.min() >= 0 and out.max() <= 1
        assert out.max() == pytest.approx(1.0)

    def test_log_stretch_monotone(self):
        field = np.array([[0.1, 1.0, 10.0, 100.0]])
        out = log_stretch(field)
        assert np.all(np.diff(out[0]) > 0)

    def test_log_stretch_shared_vmax(self):
        """Frames locked to one scale (the Fig. 9 ladder requirement)."""
        a = np.array([[1.0, 10.0]])
        out = log_stretch(a, vmax=100.0)
        assert out[0, 1] < 1.0

    def test_log_stretch_validation(self):
        with pytest.raises(ValueError):
            log_stretch(np.array([[-1.0]]))
        with pytest.raises(ValueError):
            log_stretch(np.array([[1.0]]), floor=0.0)

    def test_colormap_endpoints(self):
        rgb = apply_colormap(np.array([[0.0, 1.0]]), "gray")
        assert tuple(rgb[0, 0]) == (0, 0, 0)
        assert tuple(rgb[0, 1]) == (255, 255, 255)

    def test_all_colormaps_valid(self):
        x = np.linspace(0, 1, 32).reshape(4, 8)
        for name in COLORMAPS:
            rgb = apply_colormap(x, name)
            assert rgb.shape == (4, 8, 3)
            assert rgb.dtype == np.uint8

    def test_colormap_validation(self):
        with pytest.raises(ValueError):
            apply_colormap(np.zeros((2, 2)), "viridis")
        with pytest.raises(ValueError):
            apply_colormap(np.full((2, 2), 1.5), "gray")

    def test_ppm_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, (12, 20, 3), dtype=np.uint8)
        path = write_ppm(tmp_path / "frame", img)
        assert path.suffix == ".ppm"
        back = read_ppm(path)
        assert np.array_equal(back, img)

    def test_ppm_header_exact(self, tmp_path):
        img = np.zeros((2, 3, 3), dtype=np.uint8)
        path = write_ppm(tmp_path / "t.ppm", img)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n3 2\n255\n")
        assert len(raw) == len(b"P6\n3 2\n255\n") + 18

    def test_ppm_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x", np.zeros((2, 2)))
        bad = tmp_path / "bad.ppm"
        bad.write_bytes(b"P3\n1 1\n255\n000")
        with pytest.raises(ValueError):
            read_ppm(bad)

    def test_render_density_end_to_end(self, tmp_path, rng):
        from repro.analysis.density import density_projection

        pos = rng.uniform(0, 10.0, (5000, 3))
        proj = density_projection(pos, 10.0, 32)
        img = render_density(proj)
        assert img.shape == (32, 32, 3)
        write_ppm(tmp_path / "density", img)
