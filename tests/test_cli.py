"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PFlops" in out
        assert "13.9" in out  # headline

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fly"])

    @pytest.mark.slow
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "FOF halos" in out
        assert "P(k)" in out

    def test_module_invocation(self):
        """The documented entry point works as a subprocess."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "reproduction" in result.stdout


class TestRunCommand:
    """The checkpointed fault-tolerant ``run`` command."""

    def _base(self, outdir):
        return ["run", "--steps", "2", "--n-per-dim", "8",
                "--outdir", str(outdir)]

    def test_writes_rotation_and_resumes(self, tmp_path):
        out = tmp_path / "ck"
        assert main(self._base(out)) == 0
        names = sorted(p.name for p in out.iterdir())
        assert names and all(n.startswith("ckpt_") for n in names)
        # resuming a finished run is a no-op and exits cleanly
        assert main(["run", "--resume", str(out)]) == 0

    def test_resume_from_empty_dir_starts_fresh(self, tmp_path):
        out = tmp_path / "empty"
        out.mkdir()
        assert main(["run", "--steps", "1", "--n-per-dim", "8",
                     "--resume", str(out)]) == 0
        assert any(p.name.startswith("ckpt_") for p in out.iterdir())

    def test_bad_decomposition_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self._base(tmp_path) + ["--decomposition", "2,2"])

    def test_bad_rank_death_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self._base(tmp_path) + ["--inject-rank-death", "nope"])

    @pytest.mark.chaos
    def test_recovered_rank_death_exits_zero(self, tmp_path):
        out = tmp_path / "chaos"
        argv = self._base(out) + [
            "--decomposition", "2,1,1", "--overload-depth", "14",
            "--inject-rank-death", "1:1", "--fault-seed", "2012",
        ]
        assert main(argv) == 0
        from repro.resilience.faults import get_fault_plan

        # the command restores the null plan on the way out
        assert not get_fault_plan().enabled

    @pytest.mark.chaos
    def test_unrecovered_rank_death_exits_two(self, tmp_path):
        out = tmp_path / "chaos2"
        argv = self._base(out) + [
            "--decomposition", "2,1,1", "--overload-depth", "14",
            "--inject-rank-death", "1:0", "--no-recovery", "--health",
            "--fault-seed", "2012",
        ]
        assert main(argv) == 2

    @pytest.mark.chaos
    def test_retry_absorbs_comm_faults(self, tmp_path):
        out = tmp_path / "chaos3"
        argv = self._base(out) + [
            "--decomposition", "2,1,1", "--overload-depth", "14",
            "--retry", "--inject-comm-failures", "1.0",
            "--inject-comm-max", "2", "--fault-seed", "2012",
        ]
        assert main(argv) == 0
