"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PFlops" in out
        assert "13.9" in out  # headline

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fly"])

    @pytest.mark.slow
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "FOF halos" in out
        assert "P(k)" in out

    def test_module_invocation(self):
        """The documented entry point works as a subprocess."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "reproduction" in result.stdout
