"""Tests for the fault-tolerance subsystem (``repro.resilience``).

Covers the fault-injection plan, the retrying communicator, replica-based
rank recovery, and — under the ``chaos`` marker — the driver-level
failure scenarios: rank death mid-run (recovered and not), transient
comm failures absorbed by retries, and the full kill-a-rank /
corrupt-a-checkpoint / auto-resume story with a power-spectrum closeness
assertion against a fault-free run.

The chaos lane runs with a fixed seed (``REPRO_CHAOS_SEED``, default
2012) so every injected failure is replayable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument import HealthMonitor
from repro.instrument.registry import disable as disable_registry
from repro.instrument.registry import enable as enable_registry
from repro.parallel.comm import SimulatedComm
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.overload import OverloadExchange
from repro.resilience import (
    CommGaveUpError,
    FaultPlan,
    NullFaultPlan,
    ResilientComm,
    RetryPolicy,
    TransientCommError,
    disable_faults,
    enable_faults,
    get_fault_plan,
    harvest_replicas,
    recover_ranks,
    set_fault_plan,
    use_faults,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2012"))

BOX = 64.0
DIMS = (2, 1, 1)
DEPTH = 14.0


def tiny_config(n_steps: int = 4, **overrides) -> SimulationConfig:
    base = dict(
        box_size=BOX,
        n_per_dim=8,
        z_initial=20.0,
        z_final=5.0,
        n_steps=n_steps,
        n_subcycles=2,
        backend="treepm",
        seed=11,
    )
    base.update(overrides)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_null_plan_is_inert(self):
        plan = NullFaultPlan()
        assert not plan.enabled
        plan.comm_fault("anything")  # never raises
        assert plan.ranks_to_kill() == frozenset()
        assert plan.checkpoint_fault() is None
        assert plan.summary()["enabled"] is False

    def test_default_active_plan_is_null(self):
        assert isinstance(get_fault_plan(), NullFaultPlan)

    def test_enable_disable_roundtrip(self):
        plan = enable_faults(seed=3)
        assert get_fault_plan() is plan
        assert plan.enabled
        disable_faults()
        assert isinstance(get_fault_plan(), NullFaultPlan)

    def test_use_faults_restores_previous(self):
        inner = FaultPlan(seed=1)
        before = get_fault_plan()
        with use_faults(inner) as active:
            assert active is inner
            assert get_fault_plan() is inner
        assert get_fault_plan() is before

    def test_comm_failures_are_deterministic(self):
        def injections(seed):
            plan = FaultPlan(seed=seed).with_comm_failures(0.5)
            hits = []
            for i in range(50):
                try:
                    plan.comm_fault("t")
                except TransientCommError:
                    hits.append(i)
            return hits

        assert injections(7) == injections(7)
        assert injections(7) != injections(8)

    def test_comm_failure_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan().with_comm_failures(1.5)

    def test_comm_failure_tag_patterns(self):
        plan = FaultPlan(seed=0).with_comm_failures(1.0, tags="overload.*")
        plan.comm_fault("fft.transpose.zy")  # no match, no raise
        with pytest.raises(TransientCommError):
            plan.comm_fault("overload.distribute")

    def test_comm_failure_cap(self):
        plan = FaultPlan(seed=0).with_comm_failures(1.0, max_failures=2)
        for _ in range(2):
            with pytest.raises(TransientCommError):
                plan.comm_fault("x")
        plan.comm_fault("x")  # budget exhausted: healthy again
        assert plan.injected["comm"] == 2

    def test_rank_death_is_one_shot_per_step(self):
        plan = FaultPlan().with_rank_death(step=3, rank=1)
        plan.begin_step(2)
        assert plan.ranks_to_kill() == frozenset()
        plan.begin_step(3)
        assert plan.ranks_to_kill() == frozenset({1})
        assert plan.ranks_to_kill() == frozenset()  # consumed
        assert plan.injected["rank_death"] == 1

    def test_checkpoint_fault_targets_nth_write(self):
        plan = FaultPlan().with_checkpoint_corruption(
            write_index=1, mode="bitflip", offset=40
        )
        assert plan.checkpoint_fault() is None          # write 0
        spec = plan.checkpoint_fault()                   # write 1
        assert spec == {"mode": "bitflip", "offset": 40}
        assert plan.checkpoint_fault() is None           # write 2

    def test_checkpoint_fault_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            FaultPlan().with_checkpoint_corruption(mode="melt")

    def test_summary_folds_injected_and_recovered(self):
        plan = FaultPlan(seed=9).with_comm_failures(1.0, max_failures=1)
        with pytest.raises(TransientCommError):
            plan.comm_fault("x")
        plan.note_recovery("comm")
        s = plan.summary()
        assert s["faults_injected"] == 1
        assert s["faults_recovered"] == 1
        assert s["injected"] == {"comm": 1}
        assert s["recovered"] == {"comm": 1}

    def test_injections_counted_in_registry(self):
        reg = enable_registry()
        try:
            plan = FaultPlan(seed=0).with_comm_failures(1.0, max_failures=1)
            with pytest.raises(TransientCommError):
                plan.comm_fault("x")
            plan.note_recovery("comm")
            assert reg.counter("faults.comm") == 1
            assert reg.counter("faults.recovered.comm") == 1
        finally:
            disable_registry()


# ----------------------------------------------------------------------
# RetryPolicy / ResilientComm
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_sequence_is_deterministic(self):
        a = RetryPolicy(base_delay=0.01, jitter=0.5, seed=4)
        b = RetryPolicy(base_delay=0.01, jitter=0.5, seed=4)
        assert [a.delay(i) for i in range(4)] == [
            b.delay(i) for i in range(4)
        ]

    def test_delay_growth_and_cap(self):
        p = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.03, jitter=0.0
        )
        assert p.delay(0) == pytest.approx(0.01)
        assert p.delay(1) == pytest.approx(0.02)
        assert p.delay(2) == pytest.approx(0.03)  # capped
        assert p.delay(5) == pytest.approx(0.03)

    def test_succeeds_after_transient_failures(self):
        sleeps: list[float] = []
        policy = RetryPolicy(
            max_attempts=4, jitter=0.0, sleep=sleeps.append
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCommError("t")
            return "ok"

        plan = enable_faults()
        try:
            assert policy.run(flaky, "t") == "ok"
            assert calls["n"] == 3
            assert len(sleeps) == 2
            assert plan.recovered.get("comm") == 1
        finally:
            disable_faults()

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0, sleep=lambda s: None)

        def always():
            raise TransientCommError("t")

        with pytest.raises(CommGaveUpError) as exc:
            policy.run(always, "doomed")
        assert exc.value.attempts == 2
        assert exc.value.tag == "doomed"

    def test_deadline_bounds_retries(self):
        t = {"now": 0.0}

        def clock():
            t["now"] += 10.0
            return t["now"]

        policy = RetryPolicy(
            max_attempts=100, deadline=5.0, jitter=0.0,
            sleep=lambda s: None, clock=clock,
        )
        with pytest.raises(CommGaveUpError) as exc:
            policy.run(lambda: (_ for _ in ()).throw(
                TransientCommError("t")), "t")
        assert exc.value.attempts == 1  # first check already past deadline

    def test_events_reach_the_health_monitor(self):
        monitor = HealthMonitor()
        policy = RetryPolicy(
            max_attempts=2, jitter=0.0, sleep=lambda s: None,
            monitor=monitor,
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientCommError("t")
            return 1

        policy.run(flaky, "t")
        assert [e.check for e in monitor.events] == ["comm_retry"]
        with pytest.raises(CommGaveUpError):
            policy.run(lambda: (_ for _ in ()).throw(
                TransientCommError("t")), "t")
        assert monitor.events[-1].check == "comm_gave_up"
        assert monitor.events[-1].severity == "CRIT"
        assert monitor.verdict() == "CRIT"

    def test_retry_counters(self):
        reg = enable_registry()
        try:
            policy = RetryPolicy(
                max_attempts=2, jitter=0.0, sleep=lambda s: None
            )
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise TransientCommError("t")
                return 1

            policy.run(flaky, "t")
            assert reg.counter("comm.retries") == 1
            with pytest.raises(CommGaveUpError):
                policy.run(lambda: (_ for _ in ()).throw(
                    TransientCommError("t")), "t")
            assert reg.counter("comm.gave_up") == 1
        finally:
            disable_registry()


class TestResilientComm:
    def _policy(self):
        return RetryPolicy(max_attempts=5, jitter=0.0, sleep=lambda s: None)

    def test_absorbs_injected_failures(self):
        comm = ResilientComm(2, policy=self._policy())
        plan = FaultPlan(seed=CHAOS_SEED).with_comm_failures(
            1.0, max_failures=3
        )
        payload = [[np.arange(3), None], [None, np.arange(2)]]
        with use_faults(plan):
            out = comm.alltoallv(payload, tag="t")
        assert np.array_equal(out[0][0], np.arange(3))
        assert plan.injected["comm"] == 3
        assert plan.recovered["comm"] == 1

    def test_failed_attempts_charge_no_traffic(self):
        clean = ResilientComm(2, policy=self._policy())
        clean.allgather([1, 2], tag="t")
        baseline = (clean.stats.messages, clean.stats.bytes)

        comm = ResilientComm(2, policy=self._policy())
        plan = FaultPlan(seed=0).with_comm_failures(1.0, max_failures=2)
        with use_faults(plan):
            comm.allgather([1, 2], tag="t")
        # one successful delivery's traffic despite three attempts
        assert (comm.stats.messages, comm.stats.bytes) == baseline

    def test_gave_up_propagates(self):
        comm = ResilientComm(
            2,
            policy=RetryPolicy(
                max_attempts=2, jitter=0.0, sleep=lambda s: None
            ),
        )
        plan = FaultPlan(seed=0).with_comm_failures(1.0)
        with use_faults(plan), pytest.raises(CommGaveUpError):
            comm.barrier(tag="t")

    def test_split_children_share_the_policy(self):
        comm = ResilientComm(4, policy=self._policy())
        children = comm.split([0, 0, 1, 1])
        assert len(children) == 2
        for child in children:
            assert isinstance(child, ResilientComm)
            assert child.policy is comm.policy
            assert child.stats is comm.stats

    def test_matches_plain_comm_without_faults(self):
        plain = SimulatedComm(3)
        res = ResilientComm(3, policy=self._policy())
        vals = [10, 20, 30]
        assert res.allreduce(vals) == plain.allreduce(vals)
        assert res.allgather(vals) == plain.allgather(vals)


# ----------------------------------------------------------------------
# Replica-based recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def _exchange(self):
        decomp = DomainDecomposition(BOX, DIMS)
        return OverloadExchange(decomp, DEPTH)

    def _cloud(self, n=400, seed=1):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, BOX, (n, 3))
        mom = rng.standard_normal((n, 3))
        mas = rng.uniform(0.5, 1.5, n)
        ids = np.arange(n, dtype=np.int64)
        return pos, mom, mas, ids

    def test_harvest_dedupes_by_id(self):
        ex = self._exchange()
        pos, mom, mas, ids = self._cloud()
        domains = ex.distribute(pos, mom, mas, ids)
        survivors = [d for d in domains if d.rank != 1]
        r_pos, r_mom, r_mas, r_pid, r_home = harvest_replicas(
            survivors, {1}, ex
        )
        assert len(np.unique(r_pid)) == len(r_pid)
        assert np.all(r_home == 1)
        assert np.all((r_pos >= 0.0) & (r_pos < BOX))

    def test_recover_respawns_every_rank(self):
        ex = self._exchange()
        pos, mom, mas, ids = self._cloud()
        domains = ex.distribute(pos, mom, mas, ids)
        new_domains, report = recover_ranks(ex, domains, {1})
        assert sorted(d.rank for d in new_domains) == [0, 1]
        assert report.dead_ranks == (1,)
        assert report.n_expected == domains[1].n_active
        assert 0.0 < report.coverage() <= 1.0
        # every surviving particle kept its momentum bit-for-bit
        dead_active_ids = domains[1].ids[domains[1].active]
        recovered_ids = np.setdiff1d(dead_active_ids, report.lost_ids)
        old = {
            int(i): domains[1].momenta[domains[1].active][k]
            for k, i in enumerate(dead_active_ids)
        }
        dom1 = next(d for d in new_domains if d.rank == 1)
        act = dom1.active
        for k, i in enumerate(dom1.ids[act]):
            if int(i) in old and i in recovered_ids:
                assert np.array_equal(dom1.momenta[act][k], old[int(i)])

    def test_lost_particles_are_deep_interior(self):
        ex = self._exchange()
        pos, mom, mas, ids = self._cloud()
        domains = ex.distribute(pos, mom, mas, ids)
        _, report = recover_ranks(ex, domains, {1})
        if report.n_lost == 0:
            pytest.skip("no interior particles in this draw")
        lost_pos = pos[np.isin(ids, report.lost_ids)]
        # rank 1 of a (2,1,1) split owns x in [32, 64); only x matters
        # (y/z span the whole box, so there is no boundary there)
        x = lost_pos[:, 0]
        lo, hi = BOX / 2, BOX
        dist = np.minimum(x - lo, hi - x)
        assert np.all(dist > DEPTH)

    def test_empty_death_set_is_identity(self):
        ex = self._exchange()
        pos, mom, mas, ids = self._cloud(n=50)
        domains = ex.distribute(pos, mom, mas, ids)
        same, report = recover_ranks(ex, domains, set())
        assert same is domains
        assert report.n_expected == 0

    def test_unknown_rank_rejected(self):
        ex = self._exchange()
        pos, mom, mas, ids = self._cloud(n=50)
        domains = ex.distribute(pos, mom, mas, ids)
        with pytest.raises(ValueError, match="dead ranks"):
            recover_ranks(ex, domains, {7})


# ----------------------------------------------------------------------
# Driver-level chaos scenarios
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestDriverChaos:
    def test_rank_death_is_recovered_mid_run(self):
        cfg = tiny_config()
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=2, rank=1)
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            sim.run()
        assert plan.injected["rank_death"] == 1
        assert plan.recovered["rank_death"] == 1
        assert len(sim.recovery_reports) == 1
        report = sim.recovery_reports[0]
        assert report.dead_ranks == (1,)
        assert report.coverage() > 0.5

    def test_recovered_run_stays_close_to_fault_free(self):
        cfg = tiny_config()
        ref = HACCSimulation(
            cfg, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        ref.run()
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=2, rank=1)
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            sim.run()
        # the lost deep-interior particles miss one short-range kick;
        # displacements stay far below the grid spacing (8 Mpc/h)
        diff = np.abs(sim.particles.positions - ref.particles.positions)
        diff = np.minimum(diff, BOX - diff)  # periodic
        assert np.max(diff) < 0.5

    def test_unrecovered_death_goes_crit(self):
        cfg = tiny_config(n_steps=3)
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=1, rank=0)
        with use_faults(plan):
            sim = HACCSimulation(
                cfg,
                decomposition_dims=DIMS,
                overload_depth=DEPTH,
                recover_on_rank_death=False,
            )
            sim.attach_health()
            sim.run()
        checks = [e.check for e in sim.health.monitor.events]
        assert "rank_died" in checks
        assert sim.health.verdict() == "CRIT"
        assert sim.health.exit_status() == 2
        assert not sim.recovery_reports
        assert plan.recovered.get("rank_death") is None

    def test_recovered_death_is_warn_not_crit(self):
        cfg = tiny_config(n_steps=3)
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=1, rank=1)
        # thresholds wide open: only the discrete fault events matter
        wide = {"energy_residual": (1e9, 1e9)}
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            from repro.instrument import HealthThresholds

            sim.attach_health(
                thresholds=HealthThresholds().with_(
                    momentum_drift=(1e9, 2e9),
                    energy_residual=(1e9, 2e9),
                    mass_error=(1e9, 2e9),
                )
            )
            sim.run()
        checks = [e.check for e in sim.health.monitor.events]
        assert "rank_recovered" in checks
        assert "rank_died" not in checks
        assert sim.health.verdict() == "WARN"
        assert sim.health.exit_status() == 0

    def test_transient_comm_failures_absorbed_by_retry(self):
        cfg = tiny_config(n_steps=2)
        plan = FaultPlan(seed=CHAOS_SEED).with_comm_failures(
            1.0, tags="overload.*", max_failures=2
        )
        policy = RetryPolicy(
            max_attempts=4, jitter=0.0, sleep=lambda s: None
        )
        with use_faults(plan):
            sim = HACCSimulation(
                cfg,
                decomposition_dims=DIMS,
                overload_depth=DEPTH,
                retry_policy=policy,
            )
            sim.run()
        assert abs(sim.a - cfg.a_final) < 1e-12
        assert plan.injected["comm"] == 2
        assert plan.recovered["comm"] >= 1

    def test_shortrange_slowdown_is_injected(self):
        cfg = tiny_config(n_steps=1)
        plan = FaultPlan(seed=CHAOS_SEED).with_slowdown(
            "shortrange", 0.001
        )
        with use_faults(plan):
            sim = HACCSimulation(cfg)
            sim.run()
        assert plan.injected["slowdown"] >= 1

    def test_fft_slowdown_hooks_the_pencil_transform(self):
        from repro.fft.pencil import PencilFFT

        plan = FaultPlan(seed=CHAOS_SEED).with_slowdown("fft", 0.001)
        p = PencilFFT(8, 2, 2)
        x = np.random.default_rng(0).standard_normal((8, 8, 8))
        with use_faults(plan):
            k = p.gather(p.forward(p.scatter(x)), "x-pencil")
        assert np.allclose(k, np.fft.fftn(x))
        assert plan.injected["slowdown"] >= 1


class TestRegressionGate:
    """The CI gate must distinguish 'slow' (exit 1) from 'physically
    wrong: a rank died and stayed dead' (exit 2)."""

    def _checker(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[1]
            / "benchmarks" / "check_regression.py"
        )
        spec = importlib.util.spec_from_file_location(
            "check_regression", path
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _write(self, directory, name, events=(), faults=None,
               duration=1.0):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        events = list(events)
        verdict = "OK"
        for e in events:
            if e["severity"] == "CRIT":
                verdict = "CRIT"
        rec = {
            "name": name,
            "payload": {
                "nodeid": f"bench.py::{name}",
                "outcome": "passed",
                "duration_s": duration,
                "telemetry": {
                    "steps": 2,
                    "max_imbalance": 1.0,
                    "alerts": len(events),
                    "health_verdict": verdict,
                    "health_events": events,
                },
            },
        }
        if faults is not None:
            rec["payload"]["faults"] = faults
        (directory / f"BENCH_{name}.json").write_text(json.dumps(rec))

    def test_healthy_records_pass(self, tmp_path):
        mod = self._checker()
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self._write(fresh, "fig5_x")
        self._write(base, "fig5_x")
        argv = ["--records", str(fresh), "--baseline", str(base),
                "--check-health"]
        assert mod.main(argv) == 0

    def test_unrecovered_rank_death_exits_2(self, tmp_path):
        mod = self._checker()
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self._write(
            fresh, "chaos_x",
            events=[
                {"check": "rank_died", "severity": "CRIT", "step": 3},
            ],
            faults={"faults_injected": 1, "faults_recovered": 0},
        )
        self._write(base, "chaos_x")
        argv = ["--records", str(fresh), "--baseline", str(base),
                "--check-health"]
        assert mod.main(argv) == 2

    def test_recovered_death_is_not_fatal(self, tmp_path):
        mod = self._checker()
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self._write(
            fresh, "chaos_y",
            events=[
                {"check": "rank_recovered", "severity": "WARN", "step": 3},
            ],
            faults={"faults_injected": 1, "faults_recovered": 1},
        )
        self._write(base, "chaos_y")
        argv = ["--records", str(fresh), "--baseline", str(base),
                "--check-health"]
        assert mod.main(argv) == 0

    def test_crit_without_rank_death_exits_1(self, tmp_path):
        mod = self._checker()
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self._write(
            fresh, "bench_z",
            events=[
                {"check": "energy_residual", "severity": "CRIT",
                 "step": 1},
            ],
        )
        self._write(base, "bench_z")
        argv = ["--records", str(fresh), "--baseline", str(base),
                "--check-health"]
        assert mod.main(argv) == 1

    def test_without_check_health_events_are_ignored(self, tmp_path):
        mod = self._checker()
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self._write(
            fresh, "chaos_q",
            events=[
                {"check": "rank_died", "severity": "CRIT", "step": 1},
            ],
        )
        self._write(base, "chaos_q")
        argv = ["--records", str(fresh), "--baseline", str(base)]
        # without --check-health only perf is gated; nothing regressed
        assert mod.main(argv) == 0


@pytest.mark.chaos
class TestChaosEndToEnd:
    """The acceptance scenario: kill a rank mid-run, corrupt the latest
    checkpoint, auto-resume from the newest *valid* one, and finish with
    physics within the overload tolerance of a fault-free run."""

    def test_kill_corrupt_resume_power_spectrum(self, tmp_path):
        from repro.analysis import matter_power_spectrum
        from repro.io import (
            Checkpointer,
            CheckpointSchedule,
            find_latest_valid,
            load_checkpoint,
        )

        cfg = tiny_config(n_steps=6)

        # fault-free reference (same decomposition, no injection)
        ref = HACCSimulation(
            cfg, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        ref.run()

        # phase 1: run 4 steps, checkpoint every step, with a rank death
        # at step 2 and the *last* checkpoint write corrupted
        plan = (
            FaultPlan(seed=CHAOS_SEED)
            .with_rank_death(step=2, rank=1)
            .with_checkpoint_corruption(write_index=3, mode="truncate")
        )
        ckdir = tmp_path / "ckpts"
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            ck = Checkpointer(
                ckdir, keep_last=3,
                schedule=CheckpointSchedule(every_steps=1),
            )
            while sim._step_index < 4:
                sim.step()
                ck.maybe_checkpoint(sim)
        assert plan.injected == {"rank_death": 1, "checkpoint": 1}
        assert plan.recovered["rank_death"] == 1

        # phase 2: the "crash" happened; auto-resume must skip the
        # corrupted ckpt_000004 and fall back to ckpt_000003
        latest = find_latest_valid(ckdir)
        assert latest is not None
        assert latest.name == "ckpt_000003.npz"
        resumed = load_checkpoint(
            latest, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        assert resumed._step_index == 3
        resumed.run()
        assert abs(resumed.a - cfg.a_final) < 1e-12

        # physics: P(k) of the chaos run within the overload tolerance
        grid = cfg.grid()
        ps_ref = matter_power_spectrum(
            ref.particles.positions, BOX, grid,
            subtract_shot_noise=False,
        )
        ps_res = matter_power_spectrum(
            resumed.particles.positions, BOX, grid,
            subtract_shot_noise=False,
        )
        ok = ps_ref.power > 0
        rel = np.abs(ps_res.power[ok] - ps_ref.power[ok]) / ps_ref.power[ok]
        assert np.max(rel) < 0.05

    def test_fault_free_resume_is_bitwise(self, tmp_path):
        from repro.io import (
            Checkpointer,
            CheckpointSchedule,
            find_latest_valid,
            load_checkpoint,
        )

        cfg = tiny_config(n_steps=6)
        ref = HACCSimulation(
            cfg, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        ref.run()

        sim = HACCSimulation(
            cfg, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        ck = Checkpointer(
            tmp_path, keep_last=2,
            schedule=CheckpointSchedule(every_steps=2),
        )
        while sim._step_index < 4:
            sim.step()
            ck.maybe_checkpoint(sim)

        resumed = load_checkpoint(
            find_latest_valid(tmp_path),
            decomposition_dims=DIMS,
            overload_depth=DEPTH,
        )
        resumed.run()
        assert np.array_equal(
            resumed.particles.positions, ref.particles.positions
        )
        assert np.array_equal(
            resumed.particles.momenta, ref.particles.momenta
        )
        assert resumed.a == ref.a
