"""Tests for halo profiles/NFW fitting and merger histories."""

import numpy as np
import pytest

from repro.analysis.halos import fof_halos
from repro.analysis.mergers import build_merger_history, match_halos
from repro.analysis.profiles import (
    fit_nfw,
    nfw_density,
    radial_profile,
    sample_nfw,
)


class TestRadialProfile:
    def test_uniform_density_flat(self, rng):
        pos = rng.uniform(-10, 10, (200000, 3))
        prof = radial_profile(
            pos, np.zeros(3), r_min=2.0, r_max=8.0, n_bins=6
        )
        expected = 200000 / 20.0**3
        assert np.allclose(prof.density, expected, rtol=0.1)

    def test_periodic_center(self, rng):
        """A clump at the box corner is profiled correctly with wrapping."""
        pos = np.mod(0.5 * rng.standard_normal((2000, 3)), 20.0)
        prof = radial_profile(
            pos, np.zeros(3), box_size=20.0, r_min=0.1, r_max=3.0
        )
        assert prof.counts.sum() > 1900
        assert prof.density[0] > prof.density[-1]

    def test_weights(self, rng):
        pos = rng.uniform(-2, 2, (1000, 3))
        p1 = radial_profile(pos, np.zeros(3), r_min=0.5, r_max=2.0)
        p2 = radial_profile(
            pos, np.zeros(3), r_min=0.5, r_max=2.0,
            weights=2.0 * np.ones(1000),
        )
        assert np.allclose(p2.density, 2 * p1.density)

    def test_validation(self):
        with pytest.raises(ValueError):
            radial_profile(np.zeros((5, 3)), np.zeros(3), r_min=2.0, r_max=1.0)


class TestNFW:
    def test_density_form(self):
        # at r = r_s: rho = rho_s / (1 * 4)
        assert float(nfw_density(2.0, 8.0, 2.0)) == pytest.approx(2.0)

    def test_density_validation(self):
        with pytest.raises(ValueError):
            nfw_density(1.0, 0.0, 1.0)

    def test_sampler_radial_distribution(self):
        """Sampled enclosed mass follows ln(1+x) - x/(1+x)."""
        r_s, r_max = 0.5, 5.0
        pts = sample_nfw(40000, 1.0, r_s, r_max, seed=1)
        r = np.linalg.norm(pts, axis=1)

        def m_of(x):
            return np.log1p(x) - x / (1 + x)

        for r_test in (0.5, 1.0, 2.5):
            frac = np.mean(r < r_test)
            expected = m_of(r_test / r_s) / m_of(r_max / r_s)
            assert frac == pytest.approx(expected, abs=0.02)

    def test_fit_recovers_truth(self):
        """Round trip: sample NFW -> profile -> fit recovers r_s, rho_s."""
        rho_s, r_s = 50.0, 0.8
        pts = sample_nfw(60000, rho_s, r_s, 6.0, seed=3)
        prof = radial_profile(
            pts, np.zeros(3), r_min=0.08, r_max=5.0, n_bins=20
        )
        # normalize the measured density to the analytic rho_s: the
        # sampler draws shapes, so fit and compare r_s (scale) plus the
        # quality of the fit
        fit = fit_nfw(prof, r_vir=5.0)
        assert fit.r_s == pytest.approx(r_s, rel=0.15)
        assert fit.rms_log_residual < 0.15
        assert fit.concentration == pytest.approx(5.0 / r_s, rel=0.15)

    def test_fit_requires_enough_bins(self, rng):
        pos = rng.uniform(-1, 1, (20, 3))
        prof = radial_profile(pos, np.zeros(3), r_min=0.1, r_max=1.0, n_bins=4)
        with pytest.raises(ValueError):
            fit_nfw(prof, r_vir=1.0, min_count=50)

    def test_fit_validation(self, rng):
        pos = rng.uniform(-1, 1, (5000, 3))
        prof = radial_profile(pos, np.zeros(3), r_min=0.1, r_max=1.0)
        with pytest.raises(ValueError):
            fit_nfw(prof, r_vir=0.0)


def _two_snapshot_system(rng, box=60.0):
    """Two blobs at t0 that merge into one at t1 (ids preserved)."""
    n1, n2 = 150, 100
    c1, c2 = np.array([20.0, 30, 30]), np.array([26.0, 30, 30])
    early = np.concatenate(
        [
            c1 + 0.3 * rng.standard_normal((n1, 3)),
            c2 + 0.3 * rng.standard_normal((n2, 3)),
        ]
    )
    merged_center = np.array([23.0, 30, 30])
    late = merged_center + 0.5 * rng.standard_normal((n1 + n2, 3))
    ids = np.arange(n1 + n2)
    return np.mod(early, box), np.mod(late, box), ids


class TestMergers:
    def test_match_two_blobs_to_merger(self, rng):
        early, late, ids = _two_snapshot_system(rng)
        cat0 = fof_halos(early, 60.0, linking_length=1.2, min_members=10)
        cat1 = fof_halos(late, 60.0, linking_length=1.2, min_members=10)
        assert cat0.n_halos == 2
        assert cat1.n_halos == 1
        links = match_halos(cat0, cat1, ids, ids)
        assert len(links) == 2
        assert all(l.descendant == 0 for l in links)
        assert all(l.fraction > 0.9 for l in links)

    def test_identity_matching(self, rng):
        pos = np.mod(
            np.array([30.0, 30, 30]) + 0.3 * rng.standard_normal((100, 3)),
            60.0,
        )
        cat = fof_halos(pos, 60.0, linking_length=1.2, min_members=10)
        ids = np.arange(100)
        links = match_halos(cat, cat, ids, ids)
        assert len(links) == 1
        assert links[0].fraction == 1.0

    def test_min_fraction_filter(self, rng):
        early, late, ids = _two_snapshot_system(rng)
        cat0 = fof_halos(early, 60.0, linking_length=1.2, min_members=10)
        cat1 = fof_halos(late, 60.0, linking_length=1.2, min_members=10)
        links = match_halos(cat0, cat1, ids, ids, min_fraction=0.99)
        assert all(l.fraction >= 0.99 for l in links)

    def test_history_detects_merger(self, rng):
        early, late, ids = _two_snapshot_system(rng)
        cat0 = fof_halos(early, 60.0, linking_length=1.2, min_members=10)
        cat1 = fof_halos(late, 60.0, linking_length=1.2, min_members=10)
        hist = build_merger_history([cat0, cat1], [ids, ids])
        assert hist.n_mergers[0] == 2  # two progenitors -> merger
        # mass grew relative to the main (larger) progenitor
        assert hist.mass_growth[0] == pytest.approx(250 / 150, rel=0.1)

    def test_history_validation(self, rng):
        early, late, ids = _two_snapshot_system(rng)
        cat = fof_halos(early, 60.0, linking_length=1.2)
        with pytest.raises(ValueError):
            build_merger_history([cat], [ids])
        with pytest.raises(ValueError):
            match_halos(cat, cat, ids, ids, min_fraction=2.0)
