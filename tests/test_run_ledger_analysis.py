"""Tests for the fleet-observability layer: run ledger, critical-path
analyzer, stream follower, and crash-safe telemetry.

The analyzer tests drive synthetic span trees against a FakeClock so
self-time arithmetic is exact; the round-trip test pins the satellite
guarantee that a Chrome trace re-parsed by the analyzer yields the same
per-phase totals as the live registry.  Ledger tests run against tmp
roots only.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import instrument
from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.instrument import (
    FakeClock,
    Registry,
    RunLedger,
    RunStream,
    StreamFollower,
    Telemetry,
    read_stream,
    run_manifest,
    use_telemetry,
)
from repro.instrument.analysis import (
    WORKER_LANE_BASE,
    analyze,
    analyze_spans,
    compare,
    lane_stats,
    name_self_times,
    path_self_times,
    render_analysis,
    render_comparison,
)
from repro.instrument.exporters import load_chrome_trace, write_chrome_trace
from repro.instrument.monitor import (
    dashboard_exit_status,
    monitor_exit_status,
    render_dashboard,
)
from repro.instrument.store import git_revision


@pytest.fixture(autouse=True)
def _restore_nulls():
    yield
    instrument.disable()
    instrument.disable_telemetry()


def tiny_config(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=10.0,
        n_steps=2,
        backend="pm",
        seed=5,
    )
    base.update(kwargs)
    return SimulationConfig(**base)


def synthetic_registry() -> tuple[Registry, FakeClock]:
    """A registry with a known span tree.

    step (10s total) -> longrange (6s: fft 4s, self 2s) + self 4s
    """
    clock = FakeClock()
    reg = Registry(clock=clock)
    with reg.span("step"):
        with reg.span("longrange"):
            with reg.span("fft"):
                clock.advance(4.0)
            clock.advance(2.0)
        clock.advance(4.0)
    return reg, clock


# ----------------------------------------------------------------------
# critical-path arithmetic
# ----------------------------------------------------------------------
class TestSelfTimes:
    def test_self_is_total_minus_direct_children(self):
        reg, _ = synthetic_registry()
        by_path = path_self_times(reg.events)
        assert by_path["step"]["total_s"] == pytest.approx(10.0)
        assert by_path["step"]["self_s"] == pytest.approx(4.0)
        assert by_path["step/longrange"]["total_s"] == pytest.approx(6.0)
        assert by_path["step/longrange"]["self_s"] == pytest.approx(2.0)
        leaf = by_path["step/longrange/fft"]
        assert leaf["self_s"] == pytest.approx(leaf["total_s"]) == 4.0

    def test_only_direct_children_subtract(self):
        # grandchildren must not be double-subtracted from the root
        clock = FakeClock()
        reg = Registry(clock=clock)
        with reg.span("a"):
            with reg.span("b"):
                with reg.span("c"):
                    clock.advance(1.0)
                clock.advance(1.0)
            clock.advance(1.0)
        by_path = path_self_times(reg.events)
        assert by_path["a"]["self_s"] == pytest.approx(1.0)
        assert by_path["a/b"]["self_s"] == pytest.approx(1.0)

    def test_name_aggregation_merges_call_sites(self):
        clock = FakeClock()
        reg = Registry(clock=clock)
        for parent in ("x", "y"):
            with reg.span(parent):
                with reg.span("fft"):
                    clock.advance(2.0)
        by_name = name_self_times(reg.events)
        assert by_name["fft"]["self_s"] == pytest.approx(4.0)
        assert by_name["fft"]["calls"] == 2

    def test_analysis_wall_and_render(self):
        reg, _ = synthetic_registry()
        analysis = analyze_spans(reg.events, meta={"run_id": "t"})
        assert analysis.wall_s == pytest.approx(10.0)
        text = render_analysis(analysis)
        assert "step/longrange/fft" in text
        assert "run: t" in text


class TestLaneStats:
    def test_efficiency_and_critical_lane(self):
        # two worker lanes over one dispatch window [0, 4]:
        # lane 1000 busy 4s (critical), lane 1001 busy 2s
        spans = [
            instrument.SpanEvent("pp", "map/pp", 0.0, 4.0, 0,
                                 rank=WORKER_LANE_BASE),
            instrument.SpanEvent("pp", "map/pp", 0.0, 2.0, 0,
                                 rank=WORKER_LANE_BASE + 1),
        ]
        (stat,) = lane_stats(spans)
        assert stat.kind == "worker"
        assert stat.n_lanes == 2
        assert stat.efficiency == pytest.approx(6.0 / 8.0)
        assert stat.imbalance == pytest.approx(4.0 / 3.0)
        assert stat.critical_lane == WORKER_LANE_BASE
        assert stat.critical_share == pytest.approx(1.0)

    def test_span_excludes_idle_between_dispatches(self):
        # same phase dispatched at t=0 and t=100: the 96s of idle between
        # dispatches must not count against efficiency
        spans = [
            instrument.SpanEvent("pp", "pp", 0.0, 2.0, 0, rank=1),
            instrument.SpanEvent("pp", "pp", 100.0, 102.0, 0, rank=1),
        ]
        (stat,) = lane_stats(spans)
        assert stat.kind == "rank"
        assert stat.span_s == pytest.approx(4.0)
        assert stat.efficiency == pytest.approx(1.0)

    def test_lane_zero_not_attributable(self):
        spans = [instrument.SpanEvent("a", "a", 0.0, 1.0, 0, rank=0)]
        assert lane_stats(spans) == []


# ----------------------------------------------------------------------
# satellite: Chrome-trace round trip feeds the analyzer losslessly
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    def test_reparsed_trace_matches_registry_phase_totals(self, tmp_path):
        reg, clock = synthetic_registry()
        # add a per-rank lane and an executor worker lane
        reg.record_external("pencil", 0.0, 1.5, rank=2)
        reg.record_external("pp.batch", 0.0, 2.5,
                            rank=WORKER_LANE_BASE + 1,
                            path="shortrange.domain/pp.batch")
        dest = tmp_path / "trace.json"
        write_chrome_trace(reg, dest)
        spans = load_chrome_trace(dest)["spans"]

        direct = analyze_spans(reg.events)
        reparsed = analyze_spans(spans)
        assert set(direct.by_name) == set(reparsed.by_name)
        for name, stat in direct.by_name.items():
            assert reparsed.by_name[name]["self_s"] == pytest.approx(
                stat["self_s"], abs=1e-9
            ), name
        # lane attribution survives too, including the worker/rank split
        assert [
            (ln.name, ln.kind, ln.n_lanes) for ln in reparsed.lanes
        ] == [(ln.name, ln.kind, ln.n_lanes) for ln in direct.lanes]


# ----------------------------------------------------------------------
# cross-run comparison
# ----------------------------------------------------------------------
def _analysis_with(phases: dict[str, float], wall: float):
    clock = FakeClock()
    reg = Registry(clock=clock)
    with reg.span("step"):
        for name, dt in phases.items():
            with reg.span(name):
                clock.advance(dt)
        clock.advance(max(0.0, wall - sum(phases.values())))
    return analyze_spans(reg.events)


class TestCompare:
    def test_major_regression_flips_verdict(self):
        a = _analysis_with({"fft": 5.0, "pp": 4.0}, 10.0)
        b = _analysis_with({"fft": 8.0, "pp": 4.0}, 13.0)
        cmp = compare(a, b, threshold=0.25)
        assert cmp.verdict == "REGRESSION"
        by_name = {d.name: d for d in cmp.phases}
        assert by_name["fft"].verdict == "REGRESSION"
        assert by_name["pp"].verdict == "OK"

    def test_minor_phase_regression_does_not_gate(self):
        # "tiny" blows up 10x but holds <10% of the baseline wall, and the
        # total wall stays flat: verdict must not be REGRESSION
        a = _analysis_with({"fft": 9.0, "tiny": 0.05}, 10.0)
        b = _analysis_with({"fft": 9.0, "tiny": 0.5}, 10.0)
        cmp = compare(a, b, threshold=0.25)
        assert cmp.verdict != "REGRESSION"

    def test_new_and_gone_phases(self):
        a = _analysis_with({"fft": 5.0, "old": 2.0}, 8.0)
        b = _analysis_with({"fft": 5.0, "fresh": 2.0}, 8.0)
        cmp = compare(a, b)
        by_name = {d.name: d for d in cmp.phases}
        assert by_name["fresh"].verdict == "NEW"
        assert by_name["old"].verdict == "GONE"
        text = render_comparison(cmp)
        assert "verdict" in text

    def test_improvement(self):
        a = _analysis_with({"fft": 8.0}, 10.0)
        b = _analysis_with({"fft": 4.0}, 6.0)
        assert compare(a, b).verdict == "IMPROVED"

    def test_to_dict_is_json_serializable(self):
        a = _analysis_with({"fft": 2.0}, 3.0)
        b = _analysis_with({"fft": 2.0}, 3.0)
        payload = json.loads(json.dumps(compare(a, b).to_dict()))
        assert payload["verdict"] == "OK"
        assert payload["phases"]


# ----------------------------------------------------------------------
# satellite: follower survives partial writes
# ----------------------------------------------------------------------
class TestStreamFollower:
    def test_partial_line_is_buffered_not_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        follower = StreamFollower(path)
        assert follower.poll() == []  # not created yet

        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": "manifest", "config_hash": "c"}))
            fh.write("\n")
            fh.write('{"kind": "telemetry", "step"')  # torn mid-record
            fh.flush()
        recs = follower.poll()
        assert [r["kind"] for r in recs] == ["manifest"]
        assert follower.parse_errors == 0
        assert follower.data["steps"] == []

        with open(path, "a") as fh:
            fh.write(': 0, "wall_time": 1.0}\n')
        recs = follower.poll()
        assert [r["kind"] for r in recs] == ["telemetry"]
        assert follower.data["steps"][0]["wall_time"] == 1.0
        assert follower.parse_errors == 0

    def test_complete_corrupt_line_is_counted_and_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('not json at all\n{"kind": "end", "steps": 0}\n')
        follower = StreamFollower(path)
        recs = follower.poll()
        assert follower.parse_errors == 1
        assert [r["kind"] for r in recs] == ["end"]
        assert follower.finished

    def test_truncation_resets(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"kind": "telemetry", "step": 0, "wall_time": 1.0}\n' * 5
        )
        follower = StreamFollower(path)
        follower.poll()
        assert len(follower.data["steps"]) == 5
        path.write_text(
            '{"kind": "telemetry", "step": 0, "wall_time": 2.0}\n'
        )
        follower.poll()
        assert len(follower.data["steps"]) == 1
        assert follower.data["steps"][0]["wall_time"] == 2.0

    def test_idempotent_when_nothing_new(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "end", "steps": 1}\n')
        follower = StreamFollower(path)
        assert len(follower.poll()) == 1
        assert follower.poll() == []
        assert follower.data["end"]["steps"] == 1


# ----------------------------------------------------------------------
# satellite: a crashed driver still flushes an analyzable stream
# ----------------------------------------------------------------------
class TestCrashFlush:
    def test_crash_leaves_end_record_and_raises(self, tmp_path):
        stream_path = tmp_path / "crash.jsonl"
        sim = HACCSimulation(tiny_config(n_steps=5))
        real_step = sim.step
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RuntimeError("injected kaboom")
            real_step()

        sim.step = boom
        tel = Telemetry(stream=RunStream(stream_path))
        with use_telemetry(tel):
            with pytest.raises(RuntimeError, match="kaboom"):
                sim.run()
        data = read_stream(stream_path)
        assert data["end"] is not None
        assert data["end"]["verdict"] == "CRASHED"
        assert "kaboom" in data["end"]["error"]
        assert data["end"]["crashed_at_step"] == 2
        assert len(data["steps"]) == 2
        assert monitor_exit_status(data) == 2


# ----------------------------------------------------------------------
# run ledger
# ----------------------------------------------------------------------
def make_stream(path, config, n_steps=2, verdict="OK"):
    stream = RunStream(path, manifest=run_manifest(config))
    for i in range(n_steps):
        stream.append(
            {"kind": "telemetry", "step": i, "a": 0.5, "z": 1.0,
             "wall_time": 0.25}
        )
    stream.close(
        end={"steps": n_steps, "wall_time": 0.25 * n_steps,
             "alerts": 0, "verdict": verdict}
    )


class TestRunLedger:
    def test_record_and_query(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_REV", "deadbee")
        ledger = RunLedger(tmp_path / "ledger")
        cfg_a = tiny_config(seed=1)
        cfg_b = tiny_config(seed=2, backend="direct")
        sa = tmp_path / "a.jsonl"
        sb = tmp_path / "b.jsonl"
        make_stream(sa, cfg_a)
        make_stream(sb, cfg_b, verdict="WARN")

        reg, _ = synthetic_registry()
        ea = ledger.record(manifest=run_manifest(cfg_a), stream_path=sa,
                           registry=reg)
        eb = ledger.record(manifest=run_manifest(cfg_b), stream_path=sb)
        assert ea.run_id != eb.run_id
        assert ea.git_rev == "deadbee"
        assert ea.verdict == "OK" and eb.verdict == "WARN"
        assert ea.steps_completed == 2

        assert [e.run_id for e in ledger.entries()] == [
            ea.run_id, eb.run_id,
        ]
        assert [e.run_id for e in ledger.query(seed=1)] == [ea.run_id]
        assert [e.run_id for e in ledger.query(backend="direct")] == [
            eb.run_id,
        ]
        assert ledger.query(verdict="CRIT") == []

    def test_get_tokens(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        ids = []
        for seed in (1, 2, 3):
            cfg = tiny_config(seed=seed)
            path = tmp_path / f"s{seed}.jsonl"
            make_stream(path, cfg)
            ids.append(
                ledger.record(manifest=run_manifest(cfg),
                              stream_path=path).run_id
            )
        assert ledger.get("latest").run_id == ids[-1]
        assert ledger.get("latest~2").run_id == ids[0]
        assert ledger.get(ids[1]).run_id == ids[1]
        # unique run-id prefix resolves; a miss raises KeyError
        assert ledger.get(ids[0][:8]).run_id == ids[0]
        with pytest.raises(KeyError):
            ledger.get("no-such-run")
        with pytest.raises(KeyError):
            ledger.get("latest~9")

    def test_artifacts_and_analyze(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        cfg = tiny_config()
        path = tmp_path / "s.jsonl"
        make_stream(path, cfg)
        reg, _ = synthetic_registry()
        bench = {"smoke": {"name": "smoke", "payload": {"duration_s": 1.0}}}
        entry = ledger.record(manifest=run_manifest(cfg), stream_path=path,
                              registry=reg, bench_records=bench)
        assert ledger.load_stream(entry)["end"]["verdict"] == "OK"
        spans = ledger.load_spans(entry)
        assert spans and any(ev.path == "step/longrange/fft"
                             for ev in spans)
        assert ledger.load_bench(entry)["smoke"]["payload"][
            "duration_s"] == 1.0
        analysis = ledger.analyze(entry.run_id)
        assert analysis.by_name["fft"]["self_s"] == pytest.approx(4.0)
        assert analysis.meta["run_id"] == entry.run_id

    def test_gc_keeps_newest(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        ids = []
        for seed in (1, 2, 3):
            cfg = tiny_config(seed=seed)
            path = tmp_path / f"g{seed}.jsonl"
            make_stream(path, cfg)
            ids.append(
                ledger.record(manifest=run_manifest(cfg),
                              stream_path=path).run_id
            )
        removed = ledger.gc(keep_last=1)
        assert removed == ids[:2]
        remaining = ledger.entries()
        assert [e.run_id for e in remaining] == [ids[-1]]
        assert not (ledger.runs_dir / ids[0]).exists()
        # the compacted index still parses and queries
        assert ledger.get("latest").run_id == ids[-1]

    def test_corrupt_index_line_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        cfg = tiny_config()
        path = tmp_path / "c.jsonl"
        make_stream(path, cfg)
        entry = ledger.record(manifest=run_manifest(cfg), stream_path=path)
        with open(ledger.root / "index.jsonl", "a") as fh:
            fh.write("{torn line\n")
        assert [e.run_id for e in ledger.entries()] == [entry.run_id]

    def test_git_revision_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_REV", "cafef00")
        assert git_revision() == "cafef00"


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
class TestDashboard:
    def _data(self, verdict=None):
        end = (
            {"kind": "end", "steps": 2, "verdict": verdict}
            if verdict else None
        )
        return {
            "manifest": {"config_hash": "abc123", "n_steps": 2},
            "steps": [
                {"step": 0, "wall_time": 0.5, "z": 2.0},
                {"step": 1, "wall_time": 0.5, "z": 1.0},
            ],
            "end": end,
        }

    def test_render_rows_and_footer(self):
        text = render_dashboard(
            [("a", self._data("OK")), ("b", self._data())]
        )
        assert "a" in text and "b" in text
        assert "running" in text
        assert "1/2 run(s) finished" in text

    def test_exit_status_is_worst(self):
        runs = [("a", self._data("OK")), ("b", self._data("CRASHED"))]
        assert dashboard_exit_status(runs) == 2
        assert dashboard_exit_status([("a", self._data("OK"))]) == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCLI:
    def _ledgered_pair(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_GIT_REV", "feedbee")
        root = tmp_path / "ledger"
        for seed in (1, 2):
            assert main([
                "-q", "profile", "--steps", "1", "--n-per-dim", "8",
                "--backend", "pm", "--subcycles", "1",
                "--telemetry", str(tmp_path / f"r{seed}.jsonl"),
                "--ledger", str(root),
            ]) == 0
        return root

    def test_profile_ledger_runs_report(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.__main__ import main

        root = self._ledgered_pair(tmp_path, monkeypatch)
        capsys.readouterr()  # drop the profile tables
        assert main(["runs", "list", "--ledger", str(root),
                     "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2
        assert all(e["git_rev"] == "feedbee" for e in entries)

        assert main(["runs", "show", "latest", "--ledger",
                     str(root)]) == 0
        assert "phase" in capsys.readouterr().out

        assert main(["report", "--compare", "latest~1", "latest",
                     "--ledger", str(root), "--json"]) == 0
        rep = json.loads(capsys.readouterr().out)
        assert rep["verdict"] in ("OK", "IMPROVED", "REGRESSION")
        assert rep["phases"]

    def test_runs_gc_cli(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        root = self._ledgered_pair(tmp_path, monkeypatch)
        assert main(["runs", "gc", "--keep-last", "1", "--ledger",
                     str(root)]) == 0
        assert "removed 1 run(s)" in capsys.readouterr().out

    def test_monitor_multi_stream_dashboard(self, tmp_path, capsys):
        from repro.__main__ import main

        for name in ("a", "b"):
            make_stream(tmp_path / f"{name}.jsonl", tiny_config())
        assert main(["monitor", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "2/2 run(s) finished" in out

    def test_report_on_raw_stream_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "raw.jsonl"
        make_stream(path, tiny_config())
        assert main(["report", str(path)]) == 0
        assert "wall" in capsys.readouterr().out
