"""Tests for the 1+1D Vlasov-Poisson substrate (phase-space grid + sheet
model) and their mutual validation."""

import numpy as np
import pytest

from repro.vlasov import SheetModel, VlasovPoisson1D


class TestVlasovPoisson1D:
    def test_construction_and_grids(self):
        vp = VlasovPoisson1D(64, 128, 2.0, 0.5)
        assert vp.f.shape == (64, 128)
        assert vp.x[0] == 0.0
        assert vp.v[0] == -0.5 and vp.v[-1] == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nx=2, nv=64, box_size=1.0, v_max=1.0),
            dict(nx=64, nv=64, box_size=0.0, v_max=1.0),
            dict(nx=64, nv=64, box_size=1.0, v_max=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            VlasovPoisson1D(**kwargs)

    def test_perturbation_density(self):
        vp = VlasovPoisson1D(64, 128, 1.0, 0.5)
        vp.set_cold_perturbation(0.1, mode=2)
        delta = vp.density_contrast()
        expected = 0.1 * np.cos(4 * np.pi * vp.x)
        assert np.allclose(delta, expected, atol=1e-10)

    def test_mass_conservation(self):
        vp = VlasovPoisson1D(64, 160, 1.0, 0.6)
        vp.set_cold_perturbation(0.05)
        m0 = vp.total_mass()
        vp.run(1.0, 0.05)
        assert vp.total_mass() == pytest.approx(m0, rel=1e-10)
        assert vp.mass_lost < 1e-10 * m0

    def test_acceleration_solves_poisson(self):
        """dg/dx = -delta for a single mode: g = -(A/k) sin(kx)."""
        vp = VlasovPoisson1D(128, 64, 1.0, 0.5)
        vp.set_cold_perturbation(0.1, mode=1)
        g = vp.acceleration()
        k = 2 * np.pi
        expected = -(0.1 / k) * np.sin(k * vp.x)
        assert np.allclose(g, expected, atol=1e-6)

    def test_uniform_state_is_static(self):
        vp = VlasovPoisson1D(64, 128, 1.0, 0.5)
        vp.set_cold_perturbation(0.0)
        f0 = vp.f.copy()
        vp.run(0.5, 0.05)
        assert np.allclose(vp.f, f0, atol=1e-12)

    def test_free_streaming_translates(self):
        """With the force switched off, a drifting bunch translates."""
        vp = VlasovPoisson1D(64, 64, 1.0, 1.0)
        vp.set_cold_perturbation(0.0)
        # put all mass at one velocity cell v0
        vp.f[:] = 0.0
        j = 48  # v = +0.524
        vp.f[:, j] = 1.0 + 0.2 * np.cos(2 * np.pi * vp.x)
        v0 = vp.v[j]
        rho0 = vp.density()
        dt = 0.25
        vp._shift_x(dt)  # pure streaming kernel
        rho1 = vp.density()
        shift_cells = v0 * dt / vp.dx
        # compare against an analytic shift of the initial profile
        x_shifted = np.mod(vp.x - v0 * dt, 1.0)
        expected = np.interp(
            x_shifted, vp.x, rho0, period=1.0
        )
        assert np.allclose(rho1, expected, atol=1e-2)

    def test_linear_growth_is_cosh(self):
        """Cold Jeans instability: delta(t) = delta_0 cosh(t) in these
        units — the 1-D analogue of the growth-factor test."""
        vp = VlasovPoisson1D(128, 256, 1.0, 0.5)
        vp.set_cold_perturbation(0.02)
        a0 = vp.mode_amplitude()
        vp.run(1.0, 0.02)
        growth = vp.mode_amplitude() / a0
        assert growth == pytest.approx(np.cosh(1.0), rel=0.01)

    def test_step_validation(self):
        vp = VlasovPoisson1D(16, 16, 1.0, 0.5)
        with pytest.raises(ValueError):
            vp.step(0.0)
        with pytest.raises(ValueError):
            vp.run(-1.0, 0.1)

    def test_perturbation_validation(self):
        vp = VlasovPoisson1D(16, 16, 1.0, 0.5)
        with pytest.raises(ValueError):
            vp.set_cold_perturbation(1.5)
        with pytest.raises(ValueError):
            vp.set_cold_perturbation(0.1, mode=0)


class TestSheetModel:
    def test_uniform_lattice_static(self):
        sm = SheetModel.cold_perturbation(128, 1.0, 0.0)
        x0 = sm.x.copy()
        sm.run(1.0, 0.05)
        assert np.allclose(sm.x, x0, atol=1e-10)

    def test_acceleration_zero_mean(self):
        sm = SheetModel.cold_perturbation(200, 1.0, 0.1)
        assert abs(sm.acceleration().mean()) < 1e-12

    def test_two_sheets_attract(self):
        sm = SheetModel(
            np.array([0.45, 0.55]), np.zeros(2), 1.0
        )
        g = sm.acceleration()
        assert g[0] > 0  # pulled toward the other sheet
        assert g[1] < 0

    def test_momentum_conserved(self):
        rng = np.random.default_rng(0)
        sm = SheetModel(
            rng.uniform(0, 1, 100), rng.standard_normal(100) * 0.01, 1.0
        )
        p0 = sm.v.sum()
        sm.run(1.0, 0.02)
        assert sm.v.sum() == pytest.approx(p0, abs=1e-10)

    def test_linear_growth_is_cosh(self):
        sm = SheetModel.cold_perturbation(2000, 1.0, 0.02)
        a0 = sm.mode_amplitude()
        sm.run(1.0, 0.02)
        assert sm.mode_amplitude() / a0 == pytest.approx(
            np.cosh(1.0), rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SheetModel(np.zeros(3), np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            SheetModel(np.zeros(3), np.zeros(3), -1.0)
        sm = SheetModel.cold_perturbation(16, 1.0, 0.1)
        with pytest.raises(ValueError):
            sm.step(-0.1)


class TestCrossValidation:
    """The paper's multi-method strategy applied to the governing PDE:
    two independent discretizations must agree."""

    def test_density_profiles_agree(self):
        vp = VlasovPoisson1D(128, 256, 1.0, 0.8)
        vp.set_cold_perturbation(0.05)
        sm = SheetModel.cold_perturbation(5000, 1.0, 0.05)
        vp.run(1.5, 0.02)
        sm.run(1.5, 0.02)
        dv = vp.density_contrast()
        ds = sm.density_contrast(128)
        err = np.abs(dv - ds).max() / np.abs(ds).max()
        assert err < 0.12

    def test_growth_histories_agree(self):
        vp = VlasovPoisson1D(128, 256, 1.0, 0.5)
        vp.set_cold_perturbation(0.02)
        sm = SheetModel.cold_perturbation(2000, 1.0, 0.02)
        for t in (0.4, 0.8):
            vp.run(t, 0.02)
            sm.run(t, 0.02)
            assert vp.mode_amplitude() == pytest.approx(
                sm.mode_amplitude(), rel=0.02
            )

    def test_dimensionality_wall(self):
        """The cost bookkeeping behind 'very difficult to solve
        directly': a modest 128-point-per-axis 3+3-D grid needs ~4.4e12
        phase-space cells; the tracer N-body equivalent at the same
        spatial resolution is ~1e5-1e6x cheaper in state."""
        cells_6d = 128**6
        nbody_floats = 1e6 * 6  # a million particles, 6 phase coords
        assert cells_6d / nbody_floats > 1e5
