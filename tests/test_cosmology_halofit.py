"""Tests for the HALOFIT nonlinear power spectrum."""

import numpy as np
import pytest

from repro.cosmology import WMAP7, Cosmology, LinearPower
from repro.cosmology.halofit import HalofitPower


@pytest.fixture(scope="module")
def halofit(linear_power):
    return HalofitPower(linear_power)


class TestSpectralParams:
    def test_nonlinear_scale_reasonable(self, halofit):
        """k_sigma ~ 0.3-0.5 h/Mpc for sigma8 = 0.8 at z=0."""
        assert 0.25 < halofit.nonlinear_scale() < 0.55

    def test_effective_index(self, halofit):
        """n_eff ~ -1.5 to -2 at the nonlinear scale for CDM spectra."""
        p = halofit.spectral_params()
        assert -2.3 < p.n_eff < -1.3

    def test_curvature_positive(self, halofit):
        assert 0.0 < halofit.spectral_params().curvature < 1.0

    def test_nonlinear_scale_grows_with_time(self, halofit):
        """Structure collapses later on larger scales: k_sigma decreases
        with a (more scales are nonlinear today than at z=1)."""
        assert halofit.nonlinear_scale(1.0) < halofit.nonlinear_scale(0.5)

    def test_params_cached(self, halofit):
        a = halofit.spectral_params(1.0)
        b = halofit.spectral_params(1.0)
        assert a is b

    def test_invalid_a(self, halofit):
        with pytest.raises(ValueError):
            halofit.spectral_params(1.5)

    def test_too_cold_spectrum_rejected(self):
        cold = Cosmology(sigma8=0.01)
        with pytest.raises(ValueError):
            HalofitPower(LinearPower(cold)).spectral_params(0.05)


class TestNonlinearPower:
    def test_reduces_to_linear_at_low_k(self, halofit, linear_power):
        k = np.array([1e-3, 5e-3])
        ratio = halofit(k) / linear_power(k)
        assert np.all(np.abs(ratio - 1.0) < 0.05)

    def test_boost_at_nonlinear_scales(self, halofit):
        """P_NL substantially exceeds P_L by k ~ 1 h/Mpc at z=0."""
        boost = halofit.boost(np.array([1.0]))
        assert 3.0 < boost[0] < 15.0

    def test_boost_monotone_in_k(self, halofit):
        k = np.array([0.1, 0.3, 1.0, 3.0])
        b = halofit.boost(k)
        assert np.all(np.diff(b) > 0)

    def test_boost_weaker_at_higher_z(self, halofit):
        """Nonlinearity develops with time."""
        k = np.array([1.0])
        assert halofit.boost(k, 0.5)[0] < halofit.boost(k, 1.0)[0]

    def test_positive_everywhere(self, halofit):
        k = np.logspace(-4, 1.5, 80)
        assert np.all(halofit(k) > 0)

    def test_negative_k_rejected(self, halofit):
        with pytest.raises(ValueError):
            halofit(np.array([-0.1]))

    def test_wcdm_differs_from_lcdm(self):
        lcdm = HalofitPower(LinearPower(WMAP7))
        wcdm = HalofitPower(LinearPower(WMAP7.with_(w0=-0.8)))
        k = np.array([1.0])
        assert not np.isclose(
            float(lcdm(k, 0.5)[0]), float(wcdm(k, 0.5)[0]), rtol=1e-3
        )

    def test_sigma8_sensitivity(self):
        """Higher sigma8 -> stronger nonlinear power (steeper than
        the linear sigma8^2 scaling at nonlinear k)."""
        lo = HalofitPower(LinearPower(WMAP7.with_(sigma8=0.7)))
        hi = HalofitPower(LinearPower(WMAP7.with_(sigma8=0.9)))
        k = np.array([1.0])
        ratio = float(hi(k)[0] / lo(k)[0])
        assert ratio > (0.9 / 0.7) ** 2

    def test_consistent_with_simulation_regime(self, halofit):
        """At k ~ 1.2 h/Mpc, z=0 the science run measures a boost of
        ~1.4-2.7; HALOFIT predicts the same regime (order unity to
        several) — the bench does the detailed comparison."""
        boost = float(halofit.boost(np.array([1.2]))[0])
        assert 2.0 < boost < 20.0
