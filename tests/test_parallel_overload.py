"""Tests for particle overloading (Fig. 4 of the paper)."""

import numpy as np
import pytest

from repro.parallel.comm import SimulatedComm
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.overload import OverloadExchange


def make_exchange(box=100.0, dims=(2, 2, 2), depth=10.0):
    return OverloadExchange(DomainDecomposition(box, dims), depth)


def random_particles(rng, n=800, box=100.0):
    pos = rng.uniform(0, box, (n, 3))
    mom = rng.standard_normal((n, 3))
    return pos, mom


class TestDistribute:
    def test_every_particle_active_exactly_once(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng)
        domains = ex.distribute(pos, mom)
        ids = np.concatenate([d.ids[d.active] for d in domains])
        assert len(ids) == 800
        assert len(np.unique(ids)) == 800

    def test_active_particles_inside_their_domain(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng)
        for dom in ex.distribute(pos, mom):
            lo, hi = ex.decomposition.bounds(dom.rank)
            act = dom.positions[dom.active]
            assert np.all(act >= lo - 1e-12)
            assert np.all(act < hi + 1e-12)

    def test_passive_particles_in_overload_shell(self, rng):
        ex = make_exchange(depth=8.0)
        pos, mom = random_particles(rng)
        for dom in ex.distribute(pos, mom):
            lo, hi = ex.decomposition.bounds(dom.rank)
            pas = dom.positions[~dom.active]
            if pas.size:
                assert np.all(pas >= lo - 8.0 - 1e-9)
                assert np.all(pas < hi + 8.0 + 1e-9)
                # strictly outside the owned region
                inside = np.all((pas >= lo) & (pas < hi), axis=1)
                assert not np.any(inside)

    def test_replica_count_matches_geometric_expectation(self, rng):
        """Mean overload fraction ~ (volume factor - 1) for uniform
        particles — the paper's ~10% memory overhead argument."""
        box, depth = 100.0, 4.0
        ex = make_exchange(box=box, dims=(2, 2, 2), depth=depth)
        pos, mom = random_particles(rng, n=20000, box=box)
        domains = ex.distribute(pos, mom)
        total = sum(d.n_total for d in domains)
        expected = 20000 * ex.decomposition.overload_volume_factor(depth)
        assert total == pytest.approx(expected, rel=0.05)

    def test_replicas_share_ids_and_momenta(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng)
        domains = ex.distribute(pos, mom)
        for dom in domains:
            for i in np.flatnonzero(~dom.active)[:20]:
                gid = dom.ids[i]
                assert np.allclose(dom.momenta[i], mom[gid])

    def test_passive_positions_unwrapped_across_seam(self, rng):
        """Replicas near a periodic face carry shifted coordinates so the
        receiving rank sees a contiguous cloud."""
        box = 100.0
        ex = make_exchange(box=box, depth=10.0)
        # particle just inside the high-x face: should appear as passive
        # with x slightly negative on the ranks owning the low-x blocks
        pos = np.array([[99.5, 25.0, 25.0]])
        mom = np.zeros((1, 3))
        domains = ex.distribute(pos, mom)
        low_rank = ex.decomposition.assign(np.array([[1.0, 25.0, 25.0]]))[0]
        dom = domains[low_rank]
        pas = dom.positions[~dom.active]
        assert pas.shape[0] >= 1
        assert np.any(np.isclose(pas[:, 0], -0.5))

    def test_no_overlap_depth_zero(self, rng):
        ex = make_exchange(depth=0.0)
        pos, mom = random_particles(rng, n=500)
        domains = ex.distribute(pos, mom)
        assert sum(d.n_passive for d in domains) == 0

    def test_masses_default_to_unity(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng, n=100)
        domains = ex.distribute(pos, mom)
        assert all(np.all(d.masses == 1.0) for d in domains)

    def test_momenta_shape_mismatch_rejected(self, rng):
        ex = make_exchange()
        with pytest.raises(ValueError):
            ex.distribute(np.zeros((5, 3)), np.zeros((4, 3)))


class TestRefresh:
    def test_refresh_preserves_global_state(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng)
        domains = ex.distribute(pos, mom)
        refreshed = ex.refresh(domains)
        ids = np.concatenate([d.ids[d.active] for d in refreshed])
        assert len(np.unique(ids)) == 800
        # positions survive the round trip
        all_pos = np.concatenate([d.positions[d.active] for d in refreshed])
        all_ids = np.concatenate([d.ids[d.active] for d in refreshed])
        order = np.argsort(all_ids)
        assert np.allclose(all_pos[order], pos)

    def test_roles_switch_when_particles_cross(self, rng):
        """Fig. 4: particles switch active/passive roles across borders."""
        box = 100.0
        ex = make_exchange(box=box, dims=(2, 1, 1), depth=10.0)
        pos = np.array([[49.0, 50.0, 50.0]])
        mom = np.zeros((1, 3))
        domains = ex.distribute(pos, mom)
        assert domains[0].n_active == 1  # owned by rank 0 (x < 50)
        assert domains[1].n_passive == 1  # replica on rank 1
        # move the particle across the x=50 boundary
        domains[0].positions[domains[0].active] = [51.0, 50.0, 50.0]
        domains[1].positions[~domains[1].active] = [51.0, 50.0, 50.0]
        refreshed = ex.refresh(domains)
        assert refreshed[1].n_active == 1
        assert refreshed[0].n_passive == 1

    def test_refresh_traffic_recorded(self, rng):
        ex = make_exchange()
        pos, mom = random_particles(rng)
        domains = ex.distribute(pos, mom)
        before = ex.comm.stats.tag_bytes("overload.refresh")
        ex.refresh(domains)
        assert ex.comm.stats.tag_bytes("overload.refresh") > before

    def test_overload_fraction_reported(self, rng):
        ex = make_exchange(depth=5.0)
        pos, mom = random_particles(rng, n=4000)
        domains = ex.distribute(pos, mom)
        fracs = [d.overload_fraction() for d in domains]
        factor = ex.decomposition.overload_volume_factor(5.0)
        assert np.mean(fracs) == pytest.approx(factor - 1.0, rel=0.25)


class TestValidation:
    def test_depth_must_fit_domain(self):
        with pytest.raises(ValueError):
            make_exchange(box=100.0, dims=(4, 4, 4), depth=13.0)

    def test_negative_depth(self):
        with pytest.raises(ValueError):
            make_exchange(depth=-1.0)

    def test_comm_size_checked(self):
        d = DomainDecomposition(100.0, (2, 2, 2))
        with pytest.raises(ValueError):
            OverloadExchange(d, 5.0, comm=SimulatedComm(3))
