"""Cross-module consistency checks: independent code paths that must
agree with each other (Fourier pairs, estimator duals, model overlaps)."""

import numpy as np
import pytest

from repro.analysis.correlation import pair_correlation, xi_from_power
from repro.analysis.power import matter_power_spectrum, power_from_delta
from repro.cosmology import WMAP7, LinearPower
from repro.cosmology.gaussian_field import GaussianRandomField
from repro.cosmology.halofit import HalofitPower
from repro.machine import DistributedFFTModel, ForceKernelModel, FullCodeModel
from repro.machine.paper_data import FULLCODE_TIME_SPLIT


class TestFourierPair:
    @pytest.mark.slow
    def test_pair_counts_dual_to_power_estimator(self, rng):
        """Estimator duality: xi(r) measured by pair counting equals the
        Hankel transform of the *measured* P(k) of the same particle
        sample — two completely independent estimator code paths, with
        cosmic variance cancelling because both see one realization."""
        n, box = 32, 400.0
        pk = LinearPower(WMAP7)
        grf = GaussianRandomField(n, box, lambda k: pk(k), seed=8)
        delta = grf.realize()
        # Poisson-sample the density field (mean 6 particles per cell)
        rate = np.clip(1.0 + delta, 0.0, None)
        lam = rate / rate.mean() * 6.0
        counts = rng.poisson(lam)
        cell = box / n
        pos = []
        for (i, j, k_), c in np.ndenumerate(counts):
            if c:
                pos.append(
                    (np.array([i, j, k_]) + rng.uniform(0, 1, (c, 3)))
                    * cell
                )
        pos = np.concatenate(pos)

        ps = matter_power_spectrum(pos, box, 64, subtract_shot_noise=True)
        lk = np.log(ps.k)
        lp = np.log(np.maximum(ps.power, 1e-3))

        def p_measured(k, a=1.0):
            k = np.atleast_1d(k)
            out = np.exp(np.interp(np.log(k), lk, lp))
            out[(k < ps.k[0]) | (k > ps.k[-1])] = 0.0
            return out

        cf = pair_correlation(pos, box, r_min=20.0, r_max=45.0, n_bins=3)
        expected = xi_from_power(
            p_measured, cf.r, k_max=float(ps.k[-1])
        )
        sel = expected > 0.01  # above the noise floor of this sample
        assert sel.any()
        ratio = cf.xi[sel] / expected[sel]
        assert np.all(ratio > 0.7)
        assert np.all(ratio < 1.4)

    def test_power_estimator_inverts_generator(self):
        """Generator conventions and estimator conventions are exact
        inverses (tight version of the round-trip property)."""
        n, box = 32, 100.0
        target = lambda k: 50.0 * np.exp(-((k - 0.5) ** 2) / 0.02)
        grf = GaussianRandomField(n, box, target, seed=3)
        ps = power_from_delta(grf.realize(), box)
        sel = (ps.k > 0.35) & (ps.k < 0.65) & (ps.n_modes > 100)
        pull = (ps.power[sel] - target(ps.k[sel])) / (
            target(ps.k[sel]) * np.sqrt(2.0 / ps.n_modes[sel])
        )
        assert np.abs(pull).mean() < 2.0


class TestModelOverlaps:
    def test_kernel_model_consistent_with_fullcode_peak(self):
        """The full-code %peak (~69.5) decomposes into the kernel
        model's plateau efficiency times the 80% kernel-time share plus
        small non-kernel contributions — the two models must not
        contradict each other."""
        kernel = ForceKernelModel()
        plateau = float(kernel.peak_fraction(2500.0, 16, 4))
        kernel_share = FULLCODE_TIME_SPLIT["kernel"]
        lower = plateau * kernel_share
        headline = FullCodeModel.calibrated().headline()
        model_peak = headline["model_peak_percent"] / 100.0
        assert lower < model_peak < lower + 0.15

    def test_fft_model_consistent_with_time_split(self):
        """Sanity across models: at the Table II operating point the
        FFT model's long-range cost is a small fraction of the full-code
        substep time, consistent with the 5% share (order of
        magnitude — the models were calibrated on different tables)."""
        full = FullCodeModel.calibrated()
        fft = DistributedFFTModel.calibrated()
        # Table II row 1: 2048 ranks, 1600^3 grid, 2M particles/rank
        substep = full.c0 / 2048 * 1600**3  # seconds per substep, whole run
        # one Poisson solve = 4 FFTs, amortized over ~5 substeps
        lr_per_substep = 4 * fft.time(1600, 2048) / 5
        share = lr_per_substep / substep
        assert 0.005 < share < 0.5

    def test_halofit_vs_linear_at_bao_scales(self):
        """HALOFIT must preserve the BAO feature at quasi-linear k
        (survey science depends on it)."""
        lin = LinearPower(WMAP7)
        nl = HalofitPower(lin)
        k = np.linspace(0.05, 0.25, 60)
        ratio = nl(k) / lin(k)
        # smooth, near-unity modulation — no spurious features
        assert np.all(ratio > 0.9)
        assert np.all(ratio < 1.6)
        assert np.abs(np.diff(ratio)).max() < 0.05


class TestEndToEndDeterminism:
    @pytest.mark.slow
    def test_full_stack_is_reproducible(self):
        """Same config => bitwise identical particles, spectra, halos —
        the property every regression above relies on."""
        from repro import HACCSimulation, SimulationConfig
        from repro.analysis import fof_halos

        cfg = SimulationConfig(
            box_size=64.0,
            n_per_dim=12,
            z_initial=25.0,
            z_final=3.0,
            n_steps=5,
            backend="treepm",
            seed=123,
            step_spacing="loga",
        )
        runs = []
        for _ in range(2):
            sim = HACCSimulation(cfg)
            sim.run()
            ps = matter_power_spectrum(
                sim.particles.positions, 64.0, 12, subtract_shot_noise=False
            )
            cat = fof_halos(sim.particles.positions, 64.0, b=0.25,
                            min_members=5)
            runs.append((sim.particles.positions.copy(), ps.power,
                         cat.sizes.copy()))
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])
        assert np.array_equal(runs[0][2], runs[1][2])
