"""Tests for the FOF halo finder, sub-halos and mass functions."""

import numpy as np
import pytest

from repro.analysis.halos import fof_halos
from repro.analysis.mass_function import (
    measured_mass_function,
    press_schechter,
    sheth_tormen,
)
from repro.analysis.subhalos import find_subhalos
from repro.cosmology import LinearPower, WMAP7


def two_blobs(rng, box=50.0, n1=300, n2=150, sep=20.0):
    c1 = np.array([10.0, 25.0, 25.0])
    c2 = c1 + np.array([sep, 0.0, 0.0])
    pos = np.concatenate(
        [
            c1 + 0.2 * rng.standard_normal((n1, 3)),
            c2 + 0.2 * rng.standard_normal((n2, 3)),
        ]
    )
    return np.mod(pos, box)


class TestFOF:
    def test_two_separated_blobs(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        assert cat.n_halos == 2
        assert cat.sizes[0] == 300
        assert cat.sizes[1] == 150

    def test_sorted_by_size(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        assert np.all(np.diff(cat.sizes) <= 0)

    def test_centers_recovered(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        assert np.allclose(cat.centers[0], [10, 25, 25], atol=0.2)
        assert np.allclose(cat.centers[1], [30, 25, 25], atol=0.2)

    def test_labels_consistent_with_members(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        m0 = cat.members(0)
        assert len(m0) == cat.sizes[0]
        assert np.all(cat.labels[m0] == 0)

    def test_small_groups_dropped(self, rng):
        pos = np.concatenate(
            [two_blobs(rng), rng.uniform(40, 45, (5, 3))]  # a 5-particle clump
        )
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        assert cat.n_halos == 2
        assert np.count_nonzero(cat.labels == -1) >= 5

    def test_halo_spanning_periodic_boundary(self, rng):
        """A clump straddling the box seam is found as one halo with the
        correct (wrapped) center."""
        box = 50.0
        pos = np.mod(
            np.array([49.5, 25.0, 25.0])
            + 0.3 * rng.standard_normal((100, 3)),
            box,
        )
        cat = fof_halos(pos, box, linking_length=1.0, min_members=10)
        assert cat.n_halos == 1
        cx = cat.centers[0, 0]
        assert cx > 48.0 or cx < 1.5

    def test_relative_linking_length(self, rng):
        pos = rng.uniform(0, 10.0, (1000, 3))
        cat = fof_halos(pos, 10.0, b=0.2, min_members=5)
        assert cat.linking_length == pytest.approx(0.2 * 10.0 / 10.0)

    def test_uniform_low_density_yields_no_halos(self, rng):
        pos = rng.uniform(0, 100.0, (200, 3))  # very sparse
        cat = fof_halos(pos, 100.0, b=0.2, min_members=10)
        assert cat.n_halos == 0

    def test_mean_velocities(self, rng):
        pos = two_blobs(rng)
        mom = np.zeros_like(pos)
        mom[:300] = [1.0, 0.0, 0.0]
        mom[300:] = [0.0, 2.0, 0.0]
        cat = fof_halos(
            pos, 50.0, linking_length=1.0, min_members=10, momenta=mom
        )
        assert np.allclose(cat.mean_velocities[0], [1, 0, 0])
        assert np.allclose(cat.mean_velocities[1], [0, 2, 0])

    def test_masses_scale(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        assert cat.masses(2.0)[0] == pytest.approx(600.0)

    def test_member_index_bounds(self, rng):
        cat = fof_halos(two_blobs(rng), 50.0, linking_length=1.0)
        with pytest.raises(ValueError):
            cat.members(99)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(b=-1.0),
            dict(linking_length=30.0),
            dict(linking_length=0.0),
        ],
    )
    def test_validation(self, rng, kwargs):
        with pytest.raises(ValueError):
            fof_halos(two_blobs(rng), 50.0, **kwargs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fof_halos(np.zeros((0, 3)), 10.0)


class TestSubhalos:
    def test_host_decomposes_into_satellites(self, rng):
        """A big blob with two dense knots: sub-FOF finds the knots."""
        box = 50.0
        host = np.array([25.0, 25.0, 25.0])
        diffuse = host + 1.5 * rng.standard_normal((400, 3))
        knot1 = host + np.array([1.5, 0, 0]) + 0.05 * rng.standard_normal((80, 3))
        knot2 = host - np.array([1.5, 0, 0]) + 0.05 * rng.standard_normal((50, 3))
        pos = np.mod(np.concatenate([diffuse, knot1, knot2]), box)
        cat = fof_halos(pos, box, linking_length=1.0, min_members=10)
        assert cat.n_halos == 1
        subs = find_subhalos(
            cat, pos, halo=0, linking_fraction=0.15, min_members=20
        )
        assert len(subs) >= 2
        assert subs[0].n_members >= subs[1].n_members

    def test_members_are_global_indices(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        subs = find_subhalos(cat, pos, halo=1, linking_fraction=1.0)
        # sub-members must be a subset of the host's members
        host_members = set(cat.members(1).tolist())
        for s in subs:
            assert set(s.member_indices.tolist()) <= host_members

    def test_linking_fraction_validated(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0)
        with pytest.raises(ValueError):
            find_subhalos(cat, pos, halo=0, linking_fraction=0.0)


class TestMassFunction:
    def test_measured_counts_and_density(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0, min_members=10)
        mf = measured_mass_function(cat, particle_mass=1e10, n_bins=4)
        assert mf.counts.sum() == 2
        assert np.all(mf.dn_dlnm >= 0)

    def test_measured_validation(self, rng):
        pos = two_blobs(rng)
        cat = fof_halos(pos, 50.0, linking_length=1.0)
        with pytest.raises(ValueError):
            measured_mass_function(cat, particle_mass=0.0)

    def test_press_schechter_decreasing_at_high_mass(self, linear_power):
        m = np.array([1e13, 1e14, 1e15])
        mf = press_schechter(linear_power, m)
        assert np.all(np.diff(mf) < 0)

    def test_sheth_tormen_exceeds_ps_at_cluster_scale(self, linear_power):
        """ST predicts more massive clusters than PS — its raison d'etre."""
        m = np.array([3e14, 1e15])
        assert np.all(
            sheth_tormen(linear_power, m) > press_schechter(linear_power, m)
        )

    def test_magnitude_at_group_scale(self, linear_power):
        """dn/dlnM at 1e13 Msun/h is ~1e-4..1e-3 (Mpc/h)^-3 at z=0."""
        mf = sheth_tormen(linear_power, np.array([1e13]))[0]
        assert 1e-5 < mf < 1e-2

    @pytest.mark.slow
    def test_evolution_suppresses_high_mass(self, linear_power):
        """Halos are rarer at z=1 than today."""
        m = np.array([1e14])
        now = sheth_tormen(linear_power, m, a=1.0)[0]
        early = sheth_tormen(linear_power, m, a=0.5)[0]
        assert early < now

    def test_mass_validation(self, linear_power):
        with pytest.raises(ValueError):
            press_schechter(linear_power, np.array([-1e13]))
