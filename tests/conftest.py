"""Shared fixtures for the test suite.

Heavyweight objects (linear power spectrum, measured grid-force fit) are
session-scoped: they are deterministic, read-only, and expensive enough
that rebuilding them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosmology import LinearPower, WMAP7
from repro.shortrange.grid_force import default_grid_force_fit


@pytest.fixture(scope="session")
def linear_power():
    """Sigma8-normalized WMAP7 linear power spectrum."""
    return LinearPower(WMAP7)


@pytest.fixture(scope="session")
def grid_force_fit():
    """Measured + fitted grid force at nominal filter parameters."""
    return default_grid_force_fit()


@pytest.fixture(autouse=True)
def _restore_null_fault_plan():
    """Never let one test's fault plan leak into the next."""
    from repro.resilience.faults import disable_faults, get_fault_plan

    before = get_fault_plan()
    yield
    if get_fault_plan() is not before or before.enabled:
        disable_faults()


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(20120612)  # SC'12 submission-era seed


@pytest.fixture()
def particle_cloud(rng):
    """A small random cloud: (positions, masses) in a 10 Mpc/h cube."""
    pos = rng.uniform(0.0, 10.0, (200, 3))
    masses = rng.uniform(0.5, 1.5, 200)
    return pos, masses
