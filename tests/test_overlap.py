"""Tests for overlapped execution (``overlap=True``).

The async phase pipeline — futures-based ``submit``/``Wave`` dispatch,
the ghost exchange streamed into in-flight short-range solves, the
gradient-FFT / CIC-gather pipeline, and rank-group sharding — changes
*scheduling only*.  The headline contract pinned here: **overlapped
trajectories are bit-identical to the synchronous schedule at equal
worker counts, across the serial, thread and process backends**, because
work partitioning depends only on the worker count and every reduction
happens in the parent in fixed rank order.

Under the ``chaos`` marker a rank dies mid-overlap: recovery must drain
the in-flight exchange, rebuild the lost domains, and still match the
synchronous chaos run bitwise.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.grid.poisson import SpectralPoissonSolver
from repro.instrument.overlap import (
    HIDDEN_COUNTER,
    TOTAL_COUNTER,
    OverlapMeter,
    overlap_efficiency,
)
from repro.instrument.registry import disable as disable_registry
from repro.instrument.registry import enable as enable_registry
from repro.machine.mapping import RankGroupLayout
from repro.parallel.executor import (
    RankExecutor,
    UnpicklableTaskError,
    WorkerError,
)
from repro.resilience import FaultPlan, use_faults

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2012"))
CHAOS_WORKERS = int(os.environ.get("REPRO_CHAOS_WORKERS", "4"))

BOX = 64.0
DIMS = (2, 1, 1)
DEPTH = 14.0


def tiny_config(workers: int = 1, executor: str = "serial",
                **overrides) -> SimulationConfig:
    base = dict(
        box_size=BOX,
        n_per_dim=8,
        z_initial=20.0,
        z_final=5.0,
        n_steps=2,
        n_subcycles=2,
        backend="treepm",
        seed=11,
        workers=workers,
        executor=executor,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def run_sim(workers: int, executor: str, plan=None, **overrides):
    """Run a tiny simulation; return (positions, momenta, interactions)."""
    cfg = tiny_config(workers=workers, executor=executor, **overrides)
    if plan is not None:
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            sim.run()
    else:
        sim = HACCSimulation(
            cfg, decomposition_dims=DIMS, overload_depth=DEPTH
        )
        sim.run()
    out = (
        sim.particles.positions.copy(),
        sim.particles.momenta.copy(),
        sim.interaction_count(),
    )
    sim.close()
    return out


# module-level task functions: the process backend pickles by reference
def _square(x):
    return x * x

def _slow_identity(payload):
    value, delay = payload
    time.sleep(delay)
    return value


def _boom(x):
    raise RuntimeError(f"boom {x}")


# ----------------------------------------------------------------------
# submit / Wave unit surface
# ----------------------------------------------------------------------
class TestSubmitWave:
    def test_serial_submit_is_eager_and_ordered(self):
        with RankExecutor("serial", 1) as ex:
            seen = []
            handles = [
                ex.submit(seen.append, i, rank=i) for i in range(4)
            ]
            # eager: executed at submission time, in submission order
            assert seen == [0, 1, 2, 3]
            assert all(h.done() for h in handles)
            assert [h.result() for h in handles] == [None] * 4

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_wave_results_follow_submission_order(self, backend):
        with RankExecutor(backend, 4) as ex:
            with ex.wave("test.wave") as wave:
                # later submissions finish first; results() must still
                # come back in submission (= rank) order
                for i, delay in enumerate([0.05, 0.03, 0.01, 0.0]):
                    wave.submit(_slow_identity, (i, delay), rank=i)
                assert wave.results() == [0, 1, 2, 3]

    def test_submit_failure_raises_worker_error_with_rank(self):
        with RankExecutor("thread", 2) as ex:
            handle = ex.submit(_boom, 7, rank=1, label="test.boom")
            with pytest.raises(WorkerError) as err:
                handle.result()
            assert err.value.rank == 1
        # eager serial failures surface identically, at result() time
        with RankExecutor("serial", 1) as ex:
            handle = ex.submit(_boom, 7, rank=0)
            assert handle.done()
            with pytest.raises(WorkerError):
                handle.result()

    def test_result_is_idempotent(self):
        with RankExecutor("thread", 2) as ex:
            handle = ex.submit(_square, 6)
            assert handle.result() == 36
            assert handle.result() == 36

    def test_unpicklable_task_raises_typed_error(self):
        with RankExecutor("process", 2) as ex:
            with pytest.raises(UnpicklableTaskError) as err:
                ex.submit(lambda x: x, 1, label="phase.lambda")
            assert "phase.lambda" in str(err.value)
            with pytest.raises(UnpicklableTaskError, match="map.phase"):
                ex.map(lambda x: x, [1, 2], label="map.phase")

    def test_map_inprocess_is_parallel_on_process_backend(self):
        # the old behavior silently fell back to a serial loop; now the
        # process backend runs in-process maps on a thread pool
        with RankExecutor("process", 2) as ex:
            out = ex.map_inprocess(lambda x: x + 1, [1, 2, 3])
            assert out == [2, 3, 4]

    def test_dispatch_overhead_counters(self):
        reg = enable_registry()
        try:
            with RankExecutor("thread", 2) as ex:
                ex.map(_square, list(range(8)), label="test.phase")
            counters = reg.counters
            assert counters.get("executor.dispatches", 0) == 1
            assert counters.get("executor.tasks", 0) == 8
            # chunked dispatch: one envelope per worker, not per task
            assert counters.get("executor.envelopes", 0) == 2
            assert counters.get("executor.dispatch_s", 0) > 0
        finally:
            disable_registry()


# ----------------------------------------------------------------------
# rank groups
# ----------------------------------------------------------------------
class TestRankGroups:
    def test_layout_validation(self):
        with pytest.raises(ValueError, match="divide"):
            RankGroupLayout(n_workers=8, n_groups=3)
        with pytest.raises(ValueError, match="n_groups"):
            RankGroupLayout(n_workers=8, n_groups=0)

    def test_blocked_routing(self):
        layout = RankGroupLayout(n_workers=8, n_groups=2)
        assert layout.workers_per_group == 4
        groups = [layout.group_of(i, 16) for i in range(16)]
        assert groups == [0] * 8 + [1] * 8
        assert layout.group_slices(16) == [(0, 8), (8, 16)]

    def test_executor_group_routing_matches_layout(self):
        layout = RankGroupLayout(n_workers=8, n_groups=2)
        with RankExecutor("serial", 8, groups=2) as ex:
            for i in range(16):
                assert ex._group_of(i, 16) == layout.group_of(i, 16)

    def test_describe_reports_topology(self):
        desc = RankGroupLayout(n_workers=16, n_groups=4).describe()
        assert desc["n_groups"] == 4
        assert desc["workers_per_group"] == 4

    def test_config_rejects_non_dividing_groups(self):
        with pytest.raises(ValueError, match="worker_groups"):
            tiny_config(workers=4, executor="process", worker_groups=3)

    def test_executor_rejects_non_dividing_groups(self):
        with pytest.raises(ValueError, match="groups"):
            RankExecutor("process", 4, groups=3)

    def test_grouped_fleet_is_bitwise_equal_to_ungrouped(self):
        pos1, mom1, n1 = run_sim(4, "process", worker_groups=1)
        pos2, mom2, n2 = run_sim(4, "process", worker_groups=2)
        assert np.array_equal(pos1, pos2)
        assert np.array_equal(mom1, mom2)
        assert n1 == n2


# ----------------------------------------------------------------------
# overlap attribution
# ----------------------------------------------------------------------
class TestOverlapMeter:
    def test_meter_accumulates_hidden_and_total(self):
        meter = OverlapMeter()
        with meter.comm(hidden=True):
            time.sleep(0.002)
        with meter.comm(hidden=False):
            time.sleep(0.002)
        assert meter.total_s > meter.hidden_s > 0.0
        assert 0.0 < meter.efficiency() < 1.0

    def test_meter_charges_registry_counters(self):
        reg = enable_registry()
        try:
            meter = OverlapMeter()
            with meter.comm(hidden=True):
                pass
            counters = reg.counters
            assert counters.get(TOTAL_COUNTER, 0) > 0
            assert counters.get(HIDDEN_COUNTER, 0) > 0
        finally:
            disable_registry()

    def test_efficiency_from_counters(self):
        assert overlap_efficiency({}) is None
        eff = overlap_efficiency(
            {TOTAL_COUNTER: 2.0, HIDDEN_COUNTER: 1.0}
        )
        assert eff == 0.5
        # hidden can measure slightly above total (two clocks); clamped
        assert overlap_efficiency(
            {TOTAL_COUNTER: 1.0, HIDDEN_COUNTER: 1.1}
        ) == 1.0


# ----------------------------------------------------------------------
# the determinism contract: overlap changes scheduling, never results
# ----------------------------------------------------------------------
class TestOverlappedBitIdentity:
    def test_serial_overlap_equals_serial_sync(self):
        sync = run_sim(1, "serial", overlap=False)
        over = run_sim(1, "serial", overlap=True)
        assert np.array_equal(sync[0], over[0])
        assert np.array_equal(sync[1], over[1])
        assert sync[2] == over[2]

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_async_matches_sync_across_backends(self, workers):
        """At equal ``workers``: sync == async, thread == process."""
        ref_pos, ref_mom, ref_n = run_sim(workers, "thread", overlap=False)
        for executor in ("thread", "process"):
            pos, mom, n = run_sim(workers, executor, overlap=True)
            assert np.array_equal(pos, ref_pos), (workers, executor)
            assert np.array_equal(mom, ref_mom), (workers, executor)
            assert n == ref_n, (workers, executor)

    def test_poisson_pipeline_is_bitwise_identical(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, BOX, size=(400, 3))
        for backend, workers in (("thread", 4), ("process", 2)):
            with RankExecutor(backend, workers) as ex_a, \
                    RankExecutor(backend, workers) as ex_b:
                sync = SpectralPoissonSolver(16, BOX)
                sync.executor = ex_a
                over = SpectralPoissonSolver(16, BOX)
                over.executor = ex_b
                over.overlap = True
                assert np.array_equal(
                    sync.accelerations(positions),
                    over.accelerations(positions),
                ), (backend, workers)

    def test_overlap_records_hidden_comm(self):
        reg = enable_registry()
        try:
            cfg = tiny_config(workers=2, executor="thread", overlap=True)
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            sim.run()
            sim.close()
            counters = reg.counters
            assert counters.get(TOTAL_COUNTER, 0.0) > 0.0
            # efficiency is defined (may be 0.0 on a 1-core host where
            # every solve finishes before the next domain arrives)
            assert overlap_efficiency(counters) is not None
        finally:
            disable_registry()


# ----------------------------------------------------------------------
# chaos lane: rank death mid-overlap
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosOverlap:
    def test_rank_death_mid_overlap_recovers(self):
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=1, rank=1)
        cfg = tiny_config(
            workers=CHAOS_WORKERS, executor="thread", n_steps=3,
            overlap=True,
        )
        with use_faults(plan):
            sim = HACCSimulation(
                cfg, decomposition_dims=DIMS, overload_depth=DEPTH
            )
            sim.run()
        try:
            assert plan.injected["rank_death"] == 1
            assert plan.recovered["rank_death"] == 1
            assert len(sim.recovery_reports) == 1
            assert sim.recovery_reports[0].dead_ranks == (1,)
        finally:
            sim.close()

    def test_chaotic_overlap_matches_chaotic_sync(self):
        def chaotic(overlap):
            plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(
                step=1, rank=1
            )
            return run_sim(
                CHAOS_WORKERS, "thread", plan=plan, n_steps=3,
                overlap=overlap,
            )

        sync_pos, sync_mom, sync_n = chaotic(False)
        over_pos, over_mom, over_n = chaotic(True)
        assert np.array_equal(sync_pos, over_pos)
        assert np.array_equal(sync_mom, over_mom)
        assert sync_n == over_n
