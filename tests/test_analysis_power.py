"""Tests for the power-spectrum estimator."""

import numpy as np
import pytest

from repro.analysis.power import matter_power_spectrum, power_from_delta
from repro.cosmology.gaussian_field import GaussianRandomField


class TestPowerFromDelta:
    def test_single_mode(self):
        """A pure cosine carries P = A^2 V / 4 at its wavenumber... but
        the estimator bins; check total variance via Parseval instead:
        sum of P(k) over modes / V equals field variance."""
        n, box = 32, 64.0
        x = np.arange(n) * (box / n)
        delta = 0.1 * np.cos(2 * np.pi * 3 * x / box)[:, None, None] * np.ones(
            (1, n, n)
        )
        ps = power_from_delta(delta, box)
        kf = 2 * np.pi / box
        # power concentrated in the bin containing 3 kf
        peak_bin = np.argmax(ps.power)
        assert abs(ps.k[peak_bin] - 3 * kf) < kf

    def test_parseval_total_variance(self, rng):
        n, box = 16, 32.0
        delta = rng.standard_normal((n, n, n))
        delta -= delta.mean()
        ps = power_from_delta(delta, box, n_bins=200, k_max=1e3)
        total = np.sum(ps.power * ps.n_modes) / box**3
        assert total == pytest.approx(delta.var() * 1.0, rel=1e-6)

    def test_white_noise_flat(self, rng):
        n, box = 32, 32.0
        grf = GaussianRandomField(n, box, lambda k: 0 * k + 5.0, seed=2)
        ps = power_from_delta(grf.realize(), box)
        err = np.sqrt(2.0 / ps.n_modes)
        pull = (ps.power - 5.0) / (5.0 * err)
        assert np.abs(np.mean(pull)) < 1.0

    def test_shot_noise_subtracted(self, rng):
        n, box = 16, 16.0
        delta = rng.standard_normal((n, n, n))
        delta -= delta.mean()
        a = power_from_delta(delta, box)
        b = power_from_delta(delta, box, shot_noise=1.5)
        assert np.allclose(a.power - b.power, 1.5)

    def test_deconvolution_raises_high_k(self, rng):
        n, box = 16, 16.0
        delta = rng.standard_normal((n, n, n))
        delta -= delta.mean()
        raw = power_from_delta(delta, box)
        dec = power_from_delta(delta, box, deconvolve_cic=True)
        assert dec.power[-1] > raw.power[-1]
        assert dec.power[0] == pytest.approx(raw.power[0], rel=0.05)

    def test_dimensionless(self, rng):
        delta = rng.standard_normal((8, 8, 8))
        delta -= delta.mean()
        ps = power_from_delta(delta, 8.0)
        assert np.allclose(
            ps.dimensionless(), ps.k**3 * ps.power / (2 * np.pi**2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            power_from_delta(np.zeros((4, 4, 5)), 1.0)
        with pytest.raises(ValueError):
            power_from_delta(np.zeros((4, 4, 4)), 0.0)


class TestMatterPowerSpectrum:
    def test_poisson_sample_recovers_shot_noise(self, rng):
        """Random particles have pure shot noise: subtracting it leaves
        ~0; not subtracting leaves ~V/N."""
        n, box, npart = 16, 64.0, 5000
        pos = rng.uniform(0, box, (npart, 3))
        raw = matter_power_spectrum(pos, box, n, subtract_shot_noise=False)
        sub = matter_power_spectrum(pos, box, n, subtract_shot_noise=True)
        shot = box**3 / npart
        low = slice(0, 4)
        assert np.mean(raw.power[low]) == pytest.approx(shot, rel=0.4)
        assert abs(np.mean(sub.power[low])) < 0.4 * shot

    def test_lattice_is_sub_shot_noise(self):
        """A perfect lattice has essentially zero power below the
        Nyquist frequency of the lattice — why shot-noise subtraction
        must be off for early Zel'dovich snapshots."""
        n = 16
        box = 32.0
        g = np.arange(n) * (box / n)
        pos = np.stack(
            np.meshgrid(g, g, g, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        ps = matter_power_spectrum(pos, box, n, subtract_shot_noise=False)
        assert np.all(ps.power[:-1] < 1e-10 * box**3 / len(pos))

    def test_clustered_exceeds_random(self, rng):
        box, n = 32.0, 16
        centers = rng.uniform(0, box, (10, 3))
        clustered = np.concatenate(
            [c + rng.standard_normal((200, 3)) for c in centers]
        )
        clustered = np.mod(clustered, box)
        random = rng.uniform(0, box, (2000, 3))
        pc = matter_power_spectrum(clustered, box, n)
        pr = matter_power_spectrum(random, box, n)
        assert pc.power[0] > 10 * abs(pr.power[0])

    def test_weights_supported(self, rng):
        box = 16.0
        pos = rng.uniform(0, box, (500, 3))
        w = rng.uniform(0.5, 2.0, 500)
        ps = matter_power_spectrum(pos, box, 8, weights=w)
        assert np.all(np.isfinite(ps.power))

    def test_empty_rejected(self):
        with pytest.raises((ValueError, ZeroDivisionError, IndexError)):
            matter_power_spectrum(np.zeros((0, 3)), 8.0, 8)
