"""Tests for the batched pair engine, packing, and hot-path caches.

The equivalence suite is the contract of the PR that introduced the
batched engine: the CSR-packed, chunked evaluation must match both the
O(N^2) direct reference and the original per-leaf / per-cell loops
(``naive=True``) on clustered, uniform and near-boundary particle sets —
with the identical ``pp.interactions`` count, since the batch encodes
exactly the same lists.
"""

import numpy as np
import pytest

from repro.fft.local import (
    clear_plan_caches,
    factor_chain,
    fft1d,
    plan_cache_info,
)
from repro.fft.pencil import PencilFFT
from repro.grid.cic import ParticleGridCoords, cic_deposit, cic_interpolate
from repro.shortrange.batch import (
    BatchedPairEngine,
    InteractionBatch,
    Workspace,
    pack_tree,
)
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.multitree import MultiTreeShortRange
from repro.shortrange.rcb_tree import RCBTree, ranges_to_indices
from repro.shortrange.solvers import (
    DirectShortRange,
    P3MShortRange,
    TreePMShortRange,
    periodic_ghosts,
)

BOX = 10.0


@pytest.fixture()
def kernel(grid_force_fit):
    return ShortRangeKernel(grid_force_fit, spacing=1.0, eps_cells=0.01)


@pytest.fixture()
def kernel32(grid_force_fit):
    return ShortRangeKernel(
        grid_force_fit, spacing=1.0, eps_cells=0.01, dtype=np.float32
    )


def uniform_cloud(rng, n):
    return rng.uniform(0.0, BOX, (n, 3))


def clustered_cloud(rng, n):
    centers = rng.uniform(0.0, BOX, (max(n // 50, 2), 3))
    which = rng.integers(0, centers.shape[0], n)
    return np.mod(centers[which] + rng.normal(0.0, 0.2, (n, 3)), BOX)


def boundary_cloud(rng, n):
    """Particles concentrated near the periodic faces and corners."""
    return np.mod(rng.normal(0.0, 0.7, (n, 3)), BOX)


CLOUDS = {
    "uniform": uniform_cloud,
    "clustered": clustered_cloud,
    "boundary": boundary_cloud,
}


def assert_forces_close(a, b, rtol):
    scale = np.abs(b).max()
    assert scale > 0
    np.testing.assert_allclose(a, b, atol=rtol * scale, rtol=rtol)


# ----------------------------------------------------------------------
# packing building blocks
# ----------------------------------------------------------------------
class TestRangesToIndices:
    def test_basic(self):
        out = ranges_to_indices([2, 10], [3, 2])
        assert out.tolist() == [2, 3, 4, 10, 11]

    def test_interleaved_zero_lengths(self):
        out = ranges_to_indices([5, 7, 1, 9], [0, 2, 0, 1])
        assert out.tolist() == [7, 8, 9]

    def test_empty(self):
        assert ranges_to_indices([], []).size == 0


class TestInteractionBatch:
    def test_validation(self):
        z = np.zeros(1, dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            InteractionBatch(e, np.array([0, 1]), e, z)  # length mismatch
        with pytest.raises(ValueError):
            InteractionBatch(e, np.array([1, 0]), e, np.array([0, 0]))

    def test_empty_counts(self):
        b = InteractionBatch.empty()
        assert b.n_groups == 0
        assert b.n_pairs == 0

    def test_pair_counts(self):
        b = InteractionBatch(
            targets=np.array([0, 1, 2]),
            target_offsets=np.array([0, 2, 3]),
            neighbor_indices=np.array([0, 1, 2, 3, 4]),
            neighbor_offsets=np.array([0, 3, 5]),
        )
        assert b.group_pair_counts().tolist() == [6, 2]
        assert b.n_pairs == 8


class TestPackTree:
    def test_matches_per_leaf_interaction_lists(self, rng):
        pos = clustered_cloud(rng, 400)
        tree = RCBTree(pos, leaf_size=16)
        batch = pack_tree(tree, rcut=3.0)
        leaf_ids = tree.leaf_ids()
        assert batch.n_groups == leaf_ids.size
        for g, leaf in enumerate(leaf_ids):
            expect = tree.interaction_list(int(leaf), 3.0)
            got = batch.neighbor_indices[
                batch.neighbor_offsets[g] : batch.neighbor_offsets[g + 1]
            ]
            np.testing.assert_array_equal(got, expect)

    def test_targets_partition_particles(self, rng):
        pos = uniform_cloud(rng, 300)
        tree = RCBTree(pos, leaf_size=32)
        batch = pack_tree(tree, rcut=3.0)
        assert np.sort(batch.targets).tolist() == list(range(300))

    def test_ghost_only_leaves_skipped(self, rng):
        # real cluster + far-away ghost cluster: ghost-only leaves must
        # not become target groups, but ghosts still act as sources
        real = rng.uniform(0.0, 1.0, (64, 3))
        ghosts = rng.uniform(1.5, 2.5, (64, 3))
        pos = np.concatenate([real, ghosts])
        tree = RCBTree(pos, leaf_size=8)
        batch = pack_tree(tree, rcut=3.0, n_targets=64)
        orig = tree.perm[batch.targets]
        assert np.all(orig < 64)


class TestWorkspace:
    def test_grow_only_reuse(self):
        ws = Workspace()
        a = ws.get("x", 100, np.float64)
        b = ws.get("x", 50, np.float64)
        assert b.base is a.base or b.base is a  # same backing buffer
        c = ws.get("x", 200, np.float64)
        assert c.size == 200
        assert ws.nbytes >= 200 * 8

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.get("x", 10, np.float64)
        assert ws.get("x", 10, np.float32).dtype == np.float32


# ----------------------------------------------------------------------
# the equivalence suite
# ----------------------------------------------------------------------
class TestEquivalence:
    """Batched engine vs direct O(N^2) vs the old per-leaf/per-cell path."""

    @pytest.mark.parametrize("cloud", sorted(CLOUDS))
    def test_treepm_batched_vs_direct_and_naive_f64(
        self, kernel, rng, cloud
    ):
        pos = CLOUDS[cloud](rng, 500)
        m = rng.uniform(0.5, 1.5, 500)
        ref = DirectShortRange(kernel).accelerations(pos, m, box_size=BOX)
        batched = TreePMShortRange(kernel, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        naive = TreePMShortRange(
            kernel, leaf_size=16, naive=True
        ).accelerations(pos, m, box_size=BOX)
        assert_forces_close(batched, ref, 1e-6)
        assert_forces_close(batched, naive, 1e-6)

    @pytest.mark.parametrize("cloud", sorted(CLOUDS))
    def test_treepm_batched_vs_naive_f32(self, kernel32, rng, cloud):
        pos = CLOUDS[cloud](rng, 400)
        m = rng.uniform(0.5, 1.5, 400)
        batched = TreePMShortRange(kernel32, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        naive = TreePMShortRange(
            kernel32, leaf_size=16, naive=True
        ).accelerations(pos, m, box_size=BOX)
        assert_forces_close(batched, naive, 1e-4)

    @pytest.mark.parametrize("cloud", sorted(CLOUDS))
    def test_p3m_batched_vs_naive(self, kernel, rng, cloud):
        pos = CLOUDS[cloud](rng, 500)
        m = rng.uniform(0.5, 1.5, 500)
        batched = P3MShortRange(kernel).accelerations(pos, m, box_size=BOX)
        naive = P3MShortRange(kernel, naive=True).accelerations(
            pos, m, box_size=BOX
        )
        assert_forces_close(batched, naive, 1e-6)

    def test_multitree_batched_vs_naive(self, kernel, rng):
        pos = clustered_cloud(rng, 500)
        m = rng.uniform(0.5, 1.5, 500)
        batched = MultiTreeShortRange(
            kernel, leaf_size=16, n_trees=4
        ).accelerations(pos, m, box_size=BOX)
        naive = MultiTreeShortRange(
            kernel, leaf_size=16, n_trees=4, naive=True
        ).accelerations(pos, m, box_size=BOX)
        assert_forces_close(batched, naive, 1e-6)

    def test_interaction_counts_identical(self, kernel, rng):
        """The batch encodes the same pairs the naive loops evaluate."""
        pos = clustered_cloud(rng, 400)
        m = np.ones(400)
        kernel.reset_counters()
        TreePMShortRange(kernel, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        batched_count = kernel.interaction_count
        kernel.reset_counters()
        TreePMShortRange(kernel, leaf_size=16, naive=True).accelerations(
            pos, m, box_size=BOX
        )
        naive_count = kernel.interaction_count
        assert batched_count == naive_count > 0

    def test_p3m_interaction_counts_identical(self, kernel, rng):
        pos = uniform_cloud(rng, 300)
        m = np.ones(300)
        kernel.reset_counters()
        P3MShortRange(kernel).accelerations(pos, m, box_size=BOX)
        batched_count = kernel.interaction_count
        kernel.reset_counters()
        P3MShortRange(kernel, naive=True).accelerations(
            pos, m, box_size=BOX
        )
        assert batched_count == kernel.interaction_count > 0

    def test_multitree_balance_report_consistent(self, kernel, rng):
        pos = clustered_cloud(rng, 400)
        m = np.ones(400)
        solver_b = MultiTreeShortRange(kernel, leaf_size=16, n_trees=4)
        solver_n = MultiTreeShortRange(
            kernel, leaf_size=16, n_trees=4, naive=True
        )
        solver_b.accelerations(pos, m, box_size=BOX)
        rb = solver_b.last_balance_report()
        solver_n.accelerations(pos, m, box_size=BOX)
        rn = solver_n.last_balance_report()
        assert rb["blocks"] == rn["blocks"]
        assert rb["particles_per_block"] == rn["particles_per_block"]

    # -------------------------- edge cases --------------------------
    def test_single_particle(self, kernel):
        pos = np.array([[5.0, 5.0, 5.0]])
        acc = TreePMShortRange(kernel).accelerations(
            pos, np.ones(1), box_size=BOX
        )
        np.testing.assert_array_equal(acc, 0.0)

    def test_two_particles_match_direct(self, kernel):
        pos = np.array([[4.0, 5.0, 5.0], [6.0, 5.0, 5.0]])
        m = np.array([1.0, 2.0])
        ref = DirectShortRange(kernel).accelerations(pos, m, box_size=BOX)
        got = TreePMShortRange(kernel, leaf_size=1).accelerations(
            pos, m, box_size=BOX
        )
        assert_forces_close(got, ref, 1e-12)

    def test_empty_batch_evaluates_to_zero(self, kernel):
        engine = BatchedPairEngine(kernel)
        acc = engine.evaluate(
            InteractionBatch.empty(), np.zeros((0, 3)), np.zeros(0)
        )
        assert acc.shape == (0, 3)

    def test_ghost_only_leaves_get_no_force(self, kernel, rng):
        """Cloud = real cluster + distant ghosts: ghosts receive zero."""
        real = rng.uniform(4.0, 5.0, (40, 3))
        ghosts = rng.uniform(8.0, 9.0, (40, 3))
        cloud = np.concatenate([real, ghosts])
        masses = np.ones(80)
        solver = TreePMShortRange(kernel, leaf_size=8)
        acc = solver.accelerations_cloud(cloud, masses, n_targets=40)
        naive = TreePMShortRange(
            kernel, leaf_size=8, naive=True
        ).accelerations_cloud(cloud, masses, n_targets=40)
        assert acc.shape == (40, 3)
        assert_forces_close(acc, naive, 1e-12)

    def test_chunking_invariance(self, kernel, rng):
        """Tiny chunk_pairs exercises the tiling without changing results."""
        pos = clustered_cloud(rng, 200)
        m = np.ones(200)
        big = TreePMShortRange(kernel, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        tiny = TreePMShortRange(
            kernel, leaf_size=16, chunk_pairs=64
        ).accelerations(pos, m, box_size=BOX)
        assert_forces_close(tiny, big, 1e-12)


# ----------------------------------------------------------------------
# mixed precision
# ----------------------------------------------------------------------
class TestDtypePropagation:
    def test_accumulate_stays_float32(self, kernel32, rng):
        t = rng.uniform(0, 3, (16, 3))
        s = rng.uniform(0, 3, (32, 3))
        out = kernel32.accumulate(t, s, np.ones(32))
        assert out.dtype == np.float32

    def test_f_sr_cells_stays_float32(self, kernel32):
        s = np.linspace(0.1, 8.0, 64, dtype=np.float32)
        assert kernel32.f_sr_cells(s).dtype == np.float32

    def test_pair_coeff_into_matches_f_sr_cells(self, kernel, kernel32):
        for kern in (kernel, kernel32):
            s = np.linspace(0.05, 0.9, 40, dtype=kern.dtype)
            s *= kern.dtype(kern.fit.rcut_cells**2)
            out = np.empty_like(s)
            scratch = np.empty_like(s)
            kern.pair_coeff_into(s, out, scratch)
            expect = kern.f_sr_cells(s)
            assert out.dtype == kern.dtype
            np.testing.assert_allclose(
                out, expect, rtol=5e-6 if kern.dtype == np.float32 else 1e-12
            )

    def test_engine_workspaces_are_float32(self, kernel32, rng):
        pos = clustered_cloud(rng, 200)
        solver = TreePMShortRange(kernel32, leaf_size=16)
        solver.accelerations(pos, np.ones(200), box_size=BOX)
        ws = solver.engine.workspace
        for name in ("dx", "dy", "dz", "s2", "f"):
            assert ws._bufs[name].dtype == np.float32, name

    def test_float32_tracks_float64(self, kernel, kernel32, rng):
        pos = uniform_cloud(rng, 300)
        m = np.ones(300)
        a64 = TreePMShortRange(kernel, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        a32 = TreePMShortRange(kernel32, leaf_size=16).accelerations(
            pos, m, box_size=BOX
        )
        assert_forces_close(a32, a64, 1e-4)


# ----------------------------------------------------------------------
# vectorized ghosts
# ----------------------------------------------------------------------
class TestGhostDedup:
    def test_no_duplicate_images(self, rng):
        """Each (particle, shift) pair appears exactly once."""
        pos = rng.uniform(0.0, BOX, (500, 3))
        gp, _ = periodic_ghosts(pos, np.ones(500), BOX, 2.0)
        rounded = np.round(gp, 9)
        uniq = np.unique(rounded, axis=0)
        assert uniq.shape[0] == gp.shape[0]

    def test_masses_follow_particles(self, rng):
        pos = np.array([[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]])
        m = np.array([2.0, 3.0])
        gp, gm = periodic_ghosts(pos, m, BOX, 1.0)
        # each particle near one face: one image each
        assert gp.shape[0] == 4
        assert sorted(gm[2:].tolist()) == [2.0, 3.0]


# ----------------------------------------------------------------------
# FFT plan caches and pencil buffers
# ----------------------------------------------------------------------
class TestPlanCaches:
    def test_factor_chain(self):
        chain = factor_chain(96)
        # 96 = 2*48 -> 48 = 2*24 -> 24 (direct cutoff region: 24 <= 31)
        prod = 1
        for f in chain:
            prod *= f
        assert prod == 96
        assert chain[-1] <= 31 or len(chain) == 1

    def test_repeat_transform_hits_cache(self):
        clear_plan_caches()
        x = np.random.default_rng(0).standard_normal(96)
        fft1d(x)
        first = plan_cache_info()
        fft1d(x)
        second = plan_cache_info()
        assert second["split_factor"].hits > first["split_factor"].hits
        assert second["split_factor"].misses == first["split_factor"].misses
        assert second["twiddles"].misses == first["twiddles"].misses

    def test_native_backend_still_correct_after_caching(self):
        rng = np.random.default_rng(1)
        for n in (37, 64, 96, 100):
            v = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            np.testing.assert_allclose(
                fft1d(v), np.fft.fft(v), atol=1e-10
            )


class TestPencilBuffers:
    def test_buffers_reused_across_transforms(self):
        p = PencilFFT(8, 2, 2)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 8, 8))
        k1 = p.gather(p.forward(p.scatter(x.astype(np.complex128))), "x-pencil")
        bytes_after_first = p.transpose_buffer_bytes
        assert bytes_after_first > 0
        y = rng.standard_normal((8, 8, 8))
        k2 = p.gather(p.forward(p.scatter(y.astype(np.complex128))), "x-pencil")
        assert p.transpose_buffer_bytes == bytes_after_first
        np.testing.assert_allclose(k1, np.fft.fftn(x), atol=1e-9)
        np.testing.assert_allclose(k2, np.fft.fftn(y), atol=1e-9)

    def test_roundtrip_with_buffer_reuse(self):
        p = PencilFFT(8, 2, 2)
        x = np.random.default_rng(3).standard_normal((8, 8, 8))
        spec = p.forward(p.scatter(x.astype(np.complex128)))
        back = p.gather(p.inverse(spec), "z-pencil")
        np.testing.assert_allclose(back.real, x, atol=1e-10)


# ----------------------------------------------------------------------
# shared CIC coords
# ----------------------------------------------------------------------
class TestParticleGridCoords:
    def test_deposit_matches_uncached(self, rng):
        pos = rng.uniform(0, BOX, (300, 3))
        w = rng.uniform(0.5, 1.5, 300)
        coords = ParticleGridCoords(pos, 16, BOX)
        a = cic_deposit(pos, 16, BOX, w)
        b = cic_deposit(pos, 16, BOX, w, coords=coords)
        np.testing.assert_allclose(a, b, rtol=1e-14)

    def test_interpolate_matches_uncached(self, rng):
        pos = rng.uniform(0, BOX, (300, 3))
        grid = rng.standard_normal((16, 16, 16))
        coords = ParticleGridCoords(pos, 16, BOX)
        a = cic_interpolate(grid, pos, BOX)
        b = cic_interpolate(grid, pos, BOX, coords=coords)
        np.testing.assert_array_equal(a, b)

    def test_weights_sum_to_one(self, rng):
        coords = ParticleGridCoords(rng.uniform(0, BOX, (100, 3)), 8, BOX)
        np.testing.assert_allclose(coords.weights.sum(axis=0), 1.0)

    def test_mismatched_grid_rejected(self, rng):
        coords = ParticleGridCoords(rng.uniform(0, BOX, (10, 3)), 8, BOX)
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((10, 3)), 16, BOX, coords=coords)
