"""Smoke tests: every example script runs end-to-end.

Examples are the public face of the library; these tests keep them from
rotting.  Scripts with a size argument run at reduced scale; all are
checked for a zero exit code and their headline output markers.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, *args: str, timeout: int = 420):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES,
        env=env,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "P_linear" in result.stdout
        assert "FOF" in result.stdout

    def test_power_spectrum_evolution(self, tmp_path):
        result = run_example("power_spectrum_evolution.py", "16")
        assert result.returncode == 0, result.stderr
        assert "measured P(k) at z" in result.stdout
        assert "growth of the fundamental mode" in result.stdout

    def test_cluster_halos(self):
        result = run_example("cluster_halos.py", "16")
        assert result.returncode == 0, result.stderr
        assert "FOF:" in result.stdout

    def test_distributed_fft_demo(self):
        result = run_example("distributed_fft_demo.py", timeout=180)
        assert result.returncode == 0, result.stderr
        assert "max deviation from numpy.fft.fftn: 0.00e+00" in result.stdout
        assert "passive copies" in result.stdout

    def test_bgq_performance_models(self):
        result = run_example("bgq_performance_models.py", timeout=180)
        assert result.returncode == 0, result.stderr
        assert "13.94" in result.stdout  # paper headline appears
        assert "Table I" in result.stdout

    def test_dark_energy_signatures(self):
        result = run_example("dark_energy_signatures.py", "12")
        assert result.returncode == 0, result.stderr
        assert "wCDM" in result.stdout
        assert "lensing" in result.stdout.lower()

    def test_cluster_assembly(self):
        result = run_example("cluster_assembly.py", "16")
        assert result.returncode == 0, result.stderr
        assert "checkpoint restart reproduces" in result.stdout

    def test_vlasov_validation(self):
        result = run_example("vlasov_validation.py", timeout=420)
        assert result.returncode == 0, result.stderr
        assert "cosh" in result.stdout
        assert "dimensionality wall" in result.stdout
