"""Tests for the shared-memory rank executor (``repro.parallel.executor``).

Covers the executor unit surface (backends, ordered results, shared
arrays, failure attribution, lifecycle), the wiring into the threaded
CIC deposit and the Poisson solver, and the headline guarantee of the
parallel-executor PR: **equal-``workers`` runs are bit-identical across
the serial, thread and process backends**, because the work partition
depends only on the worker count and every reduction happens in the
parent in fixed order.

Under the ``chaos`` marker the rank-death recovery story is re-run with
the fleet dispatched on ``REPRO_CHAOS_WORKERS`` workers (default 4),
pinning that fault injection and the parallel dispatch compose.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.simulation import HACCSimulation
from repro.grid.cic import cic_deposit
from repro.grid.poisson import SpectralPoissonSolver
from repro.grid.threaded_cic import ThreadedCIC
from repro.instrument import get_telemetry
from repro.instrument.registry import disable as disable_registry
from repro.instrument.registry import enable as enable_registry
from repro.instrument.telemetry import run_manifest
from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    WORKER_LANE_BASE,
    RankExecutor,
    SharedArrayHandle,
    WorkerError,
    resolve_shared,
)
from repro.resilience import FaultPlan, use_faults

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2012"))
CHAOS_WORKERS = int(os.environ.get("REPRO_CHAOS_WORKERS", "4"))

BOX = 64.0
DIMS = (2, 1, 1)
DEPTH = 14.0


def tiny_config(workers: int = 1, executor: str = "serial",
                **overrides) -> SimulationConfig:
    base = dict(
        box_size=BOX,
        n_per_dim=8,
        z_initial=20.0,
        z_final=5.0,
        n_steps=2,
        n_subcycles=2,
        backend="treepm",
        seed=11,
        workers=workers,
        executor=executor,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def make_sim(cfg: SimulationConfig) -> HACCSimulation:
    return HACCSimulation(
        cfg, decomposition_dims=DIMS, overload_depth=DEPTH
    )


def run_sim(workers: int, executor: str, plan=None, **overrides):
    """Run a tiny simulation; return (positions, momenta, interactions)."""
    cfg = tiny_config(workers=workers, executor=executor, **overrides)
    if plan is not None:
        with use_faults(plan):
            sim = make_sim(cfg)
            sim.run()
    else:
        sim = make_sim(cfg)
        sim.run()
    out = (
        sim.particles.positions.copy(),
        sim.particles.momenta.copy(),
        sim.interaction_count(),
    )
    sim.close()
    return out


# module-level task functions: the process backend pickles by reference
def _double(x):
    return 2 * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("payload three is poison")
    return x


def _read_shared(payload):
    ref, i = payload
    return float(resolve_shared(ref)[i])


# ----------------------------------------------------------------------
# executor unit surface
# ----------------------------------------------------------------------
class TestRankExecutor:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            RankExecutor(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            RankExecutor(workers=0)

    def test_partition_width_is_backend_independent(self):
        # the determinism contract hinges on this: the partition (and
        # hence the float reassociation) is set by `workers` alone
        for backend in EXECUTOR_BACKENDS:
            ex = RankExecutor(backend=backend, workers=3)
            assert ex.n_workers == 3
            assert ex.parallel
            ex.close()
        assert not RankExecutor(backend="thread", workers=1).parallel

    def test_from_config(self):
        cfg = tiny_config(workers=2, executor="thread")
        ex = RankExecutor.from_config(cfg)
        assert ex.backend == "thread"
        assert ex.workers == 2
        ex.close()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_map_preserves_payload_order(self, backend):
        with RankExecutor(backend=backend, workers=3) as ex:
            assert ex.map(_double, list(range(7))) == [
                2 * i for i in range(7)
            ]
            assert ex.map(_double, []) == []

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_first_failure_in_payload_order_wins(self, backend):
        with RankExecutor(backend=backend, workers=3) as ex:
            with pytest.raises(WorkerError) as err:
                ex.map(
                    _fail_on_three, [3, 0, 3, 1], ranks=[7, 8, 9, 10]
                )
        # both rank 7 and rank 9 fail; the first in payload order is
        # reported, deterministically, whatever finished first
        assert err.value.rank == 7
        assert isinstance(err.value.original, ValueError)

    def test_rank_length_mismatch_rejected(self):
        with RankExecutor() as ex:
            with pytest.raises(ValueError, match="ranks"):
                ex.map(_double, [1, 2], ranks=[0])

    def test_map_inprocess_orders_and_raises(self):
        with RankExecutor(backend="thread", workers=2) as ex:
            assert ex.map_inprocess(_double, [1, 2, 3]) == [2, 4, 6]
            with pytest.raises(WorkerError) as err:
                ex.map_inprocess(_fail_on_three, [0, 3])
            assert err.value.rank == 1

    def test_share_inprocess_returns_the_array(self):
        arr = np.arange(5, dtype=np.float64)
        for backend in ("serial", "thread"):
            with RankExecutor(backend=backend, workers=2) as ex:
                out = ex.share("k", arr)
                assert isinstance(out, np.ndarray)
                assert np.shares_memory(out, arr)

    def test_share_process_roundtrip(self):
        arr = np.linspace(0.0, 1.0, 9)
        with RankExecutor(backend="process", workers=2) as ex:
            ref = ex.share("k", arr)
            assert isinstance(ref, SharedArrayHandle)
            assert ref.shape == (9,)
            # parent-side resolve sees the published values
            assert np.array_equal(resolve_shared(ref), arr)
            # child-side resolve too
            out = ex.map(_read_shared, [(ref, i) for i in range(9)])
            assert out == list(arr)

    def test_share_reuses_block_until_shape_changes(self):
        with RankExecutor(backend="process", workers=2) as ex:
            a = ex.share("k", np.zeros(4))
            b = ex.share("k", np.ones(4))
            assert a.name == b.name  # rewritten in place
            assert np.array_equal(resolve_shared(b), np.ones(4))
            c = ex.share("k", np.ones(6))
            assert c.name != a.name  # reallocated

    def test_close_is_idempotent(self):
        ex = RankExecutor(backend="thread", workers=2)
        ex.map(_double, [1])
        ex.close()
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(_double, [1])

    def test_shared_segments_tracked_and_released(self):
        """The leak guard tracks live segments and close() clears them."""
        import os

        from repro.parallel.executor import (
            _LIVE_SEGMENTS,
            _sweep_segments,
            SHM_PREFIX,
        )

        with RankExecutor(backend="process", workers=2) as ex:
            ref = ex.share("k", np.zeros(8))
            assert ref.name in _LIVE_SEGMENTS
            # pid-prefixed name: the supervisor's post-SIGKILL sweep key
            assert ref.name.startswith(f"{SHM_PREFIX}{os.getpid()}-")
        assert ref.name not in _LIVE_SEGMENTS

    def test_atexit_sweep_unlinks_leaked_segments(self):
        """A segment leaked past close() is unlinked by the sweep."""
        from multiprocessing import shared_memory

        from repro.parallel.executor import (
            _LIVE_SEGMENTS,
            _sweep_segments,
            _track_segment,
        )

        shm = shared_memory.SharedMemory(create=True, size=64)
        _track_segment(shm)
        name = shm.name
        _sweep_segments()
        assert name not in _LIVE_SEGMENTS
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# threaded CIC through the executor (satellite: Section VI wiring)
# ----------------------------------------------------------------------
class TestThreadedCICExecutor:
    N, GRID = 500, 12

    def _cloud(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(0.0, BOX, (self.N, 3))
        w = rng.uniform(0.5, 1.5, self.N)
        return pos, w

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_executor_deposit_matches_sequential_simulation(self, backend):
        pos, w = self._cloud()
        expected = ThreadedCIC(3).deposit(pos, self.GRID, BOX, w)
        with RankExecutor(backend=backend, workers=3) as ex:
            tc = ThreadedCIC(3, executor=ex)
            got = tc.deposit(pos, self.GRID, BOX, w)
        # identical partition + fixed-order reduction => bitwise equal
        assert np.array_equal(got, expected)
        assert tc.last_report.n_workers == 3

    def test_deposit_close_to_plain_cic(self):
        pos, w = self._cloud()
        plain = cic_deposit(pos, self.GRID, BOX, w)
        with RankExecutor(backend="thread", workers=4) as ex:
            got = ThreadedCIC(4, executor=ex).deposit(
                pos, self.GRID, BOX, w
            )
        # reassociated sums: equal to round-off, not bitwise
        np.testing.assert_allclose(got, plain, rtol=0, atol=1e-12)


# ----------------------------------------------------------------------
# Poisson solver through the executor
# ----------------------------------------------------------------------
class TestPoissonParallel:
    def _cloud(self, n=400):
        rng = np.random.default_rng(9)
        return rng.uniform(0.0, BOX, (n, 3))

    def test_force_grids_bitwise_across_backends(self):
        rng = np.random.default_rng(2)
        delta = rng.standard_normal((8, 8, 8))
        plain = SpectralPoissonSolver(8, BOX).force_grids(delta)
        for backend in ("thread", "process"):
            with RankExecutor(backend=backend, workers=3) as ex:
                s = SpectralPoissonSolver(8, BOX, executor=ex)
                got = s.force_grids(delta)
            for g, p in zip(got, plain):
                # the gradient FFTs are independent per component: the
                # parallel path reorders nothing, so even the serial
                # no-executor solver matches bitwise
                assert np.array_equal(g, p)

    def test_accelerations_bitwise_across_backends(self):
        pos = self._cloud()
        outs = {}
        for backend in EXECUTOR_BACKENDS:
            with RankExecutor(backend=backend, workers=3) as ex:
                s = SpectralPoissonSolver(8, BOX, executor=ex)
                outs[backend] = s.accelerations(pos)
        assert np.array_equal(outs["serial"], outs["thread"])
        assert np.array_equal(outs["serial"], outs["process"])

    def test_accelerations_close_to_unpartitioned(self):
        pos = self._cloud()
        plain = SpectralPoissonSolver(8, BOX).accelerations(pos)
        with RankExecutor(backend="thread", workers=3) as ex:
            got = SpectralPoissonSolver(8, BOX, executor=ex).accelerations(
                pos
            )
        scale = np.abs(plain).max()
        np.testing.assert_allclose(got, plain, atol=1e-12 * max(scale, 1))

    def test_negated_gradient_kernels_precomputed(self):
        from repro.cosmology.gaussian_field import fourier_grid
        from repro.grid.filters import super_lanczos_gradient

        s = SpectralPoissonSolver(8, BOX)
        kx, _, _ = fourier_grid(8, BOX)
        direct = super_lanczos_gradient(kx, s.spacing, s.gradient_order)
        assert np.array_equal(s._neg_grad_kernels[0], -direct)


# ----------------------------------------------------------------------
# the headline guarantee: bit-identical trajectories across backends
# ----------------------------------------------------------------------
class TestSimulationDeterminism:
    def test_backends_bit_identical_at_equal_workers(self):
        ref_pos, ref_mom, ref_int = run_sim(4, "serial")
        for backend in ("thread", "process"):
            pos, mom, n_int = run_sim(4, backend)
            assert np.array_equal(pos, ref_pos), backend
            assert np.array_equal(mom, ref_mom), backend
            assert n_int == ref_int, backend

    def test_worker_count_changes_only_roundoff(self):
        p1, _, i1 = run_sim(1, "serial")
        p4, _, i4 = run_sim(4, "serial")
        # the pair lists (hence interaction counts) are partition
        # independent; positions drift only by CIC-reduction round-off
        assert i1 == i4
        diff = np.abs(p4 - p1)
        diff = np.minimum(diff, BOX - diff)
        assert np.max(diff) < 1e-9

    def test_manifest_records_executor_and_workers(self):
        cfg = tiny_config(workers=4, executor="thread")
        man = run_manifest(cfg)
        assert man["executor"] == "thread"
        assert man["workers"] == 4
        assert man["config"]["executor"] == "thread"

    def test_config_validates_executor_fields(self):
        with pytest.raises(ValueError, match="executor"):
            tiny_config(executor="gpu")
        with pytest.raises(ValueError, match="workers"):
            tiny_config(workers=0)


# ----------------------------------------------------------------------
# failure propagation out of the fleet
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_worker_exception_names_the_failing_rank(self, monkeypatch):
        import repro.core.simulation as simmod

        real = simmod._solve_domain

        def poisoned(solver, rank, positions, masses, active):
            if rank == 1:
                raise RuntimeError("domain solver blew up")
            return real(solver, rank, positions, masses, active)

        monkeypatch.setattr(simmod, "_solve_domain", poisoned)
        sim = make_sim(tiny_config(workers=CHAOS_WORKERS, executor="thread"))
        try:
            with pytest.raises(WorkerError) as err:
                sim.step()
            assert err.value.rank == 1
            assert "domain solver blew up" in str(err.value)
        finally:
            sim.close()


# ----------------------------------------------------------------------
# trace lanes
# ----------------------------------------------------------------------
class TestWorkerTraceLanes:
    def test_chrome_trace_labels_worker_lanes(self, tmp_path):
        from repro.instrument import exporters

        reg = enable_registry()
        try:
            with RankExecutor(backend="thread", workers=2) as ex:
                ex.map(_double, list(range(8)), label="shortrange.domain")
            path = tmp_path / "trace.json"
            exporters.write_chrome_trace(reg, path)
        finally:
            disable_registry()
        raw = json.loads(path.read_text())
        names = {
            e["args"]["name"]
            for e in raw["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert any(n.startswith("worker ") for n in names)
        lanes = {
            e["pid"]
            for e in raw["traceEvents"]
            if e.get("name") == "shortrange.domain"
        }
        assert lanes and all(l >= WORKER_LANE_BASE for l in lanes)

    def test_record_external_lands_in_aggregates(self):
        reg = enable_registry()
        try:
            reg.record_external("shortrange.domain", 10.0, 10.5, rank=1001)
            assert reg.section_seconds("shortrange.domain") == (
                pytest.approx(0.5)
            )
            with pytest.raises(ValueError):
                reg.record_external("x", 2.0, 1.0)
        finally:
            disable_registry()


# ----------------------------------------------------------------------
# chaos lane: fault injection composes with parallel dispatch
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosParallel:
    def test_rank_death_recovered_under_parallel_fleet(self):
        plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(step=1, rank=1)
        cfg = tiny_config(
            workers=CHAOS_WORKERS, executor="thread", n_steps=3
        )
        with use_faults(plan):
            sim = make_sim(cfg)
            sim.run()
        try:
            assert plan.injected["rank_death"] == 1
            assert plan.recovered["rank_death"] == 1
            assert len(sim.recovery_reports) == 1
            assert sim.recovery_reports[0].dead_ranks == (1,)
        finally:
            sim.close()

    def test_recovered_chaos_run_is_backend_independent(self):
        def chaotic(executor):
            plan = FaultPlan(seed=CHAOS_SEED).with_rank_death(
                step=1, rank=1
            )
            return run_sim(
                CHAOS_WORKERS, executor, plan=plan, n_steps=3
            )

        ref_pos, ref_mom, _ = chaotic("serial")
        for backend in ("thread", "process"):
            pos, mom, _ = chaotic(backend)
            assert np.array_equal(pos, ref_pos), backend
            assert np.array_equal(mom, ref_mom), backend
