"""Tests for the spectral kernels and the filtered Poisson solver."""

import numpy as np
import pytest

from repro.fft.pencil import PencilFFT
from repro.grid.filters import (
    influence_function,
    spectral_filter,
    super_lanczos_gradient,
)
from repro.grid.poisson import SpectralPoissonSolver


class TestSpectralFilter:
    def test_unity_at_k_zero(self):
        assert float(spectral_filter(0.0, 0.0, 0.0, 1.0)) == pytest.approx(1.0)

    def test_monotone_decay(self):
        k = np.linspace(0, np.pi, 50)
        s = spectral_filter(k, 0.0, 0.0, 1.0)
        assert np.all(np.diff(s) < 0)

    def test_nominal_parameters(self):
        """sigma=0.8, ns=3 from Eq. (5)."""
        val = float(spectral_filter(1.0, 0.0, 0.0, 1.0))
        expected = np.exp(-0.8**2 / 4) * (np.sin(0.5) / 0.5) ** 3
        assert val == pytest.approx(expected, rel=1e-12)

    def test_ns_zero_pure_gaussian(self):
        val = float(spectral_filter(2.0, 0.0, 0.0, 1.0, sigma=1.0, ns=0))
        assert val == pytest.approx(np.exp(-1.0), rel=1e-12)

    def test_isotropy(self):
        """The filter depends only on |k| — its purpose is isotropization."""
        a = float(spectral_filter(1.0, 0.0, 0.0, 1.0))
        b = float(spectral_filter(0.0, 1.0, 0.0, 1.0))
        c = float(
            spectral_filter(1 / np.sqrt(3), 1 / np.sqrt(3), 1 / np.sqrt(3), 1.0)
        )
        assert a == pytest.approx(b, rel=1e-12)
        assert a == pytest.approx(c, rel=1e-12)

    @pytest.mark.parametrize("kwargs", [dict(spacing=0.0), dict(sigma=-1.0), dict(ns=-1)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            spectral_filter(1.0, 0.0, 0.0, **{"spacing": 1.0, **kwargs})


class TestInfluenceFunction:
    def test_continuum_limit(self):
        k = 1e-3
        g = float(influence_function(k, 0.0, 0.0, 1.0))
        assert g == pytest.approx(-1.0 / k**2, rel=1e-5)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_convergence_order(self, order):
        """Error shrinks by ~2^order when k is halved (order-th order)."""
        def err(k):
            g = float(influence_function(k, 0.0, 0.0, 1.0, order=order))
            return abs(g * k**2 + 1.0)

        rate = err(0.5) / err(0.25)
        assert rate == pytest.approx(2**order, rel=0.25)

    def test_sixth_beats_second(self):
        k = 1.0
        g2 = float(influence_function(k, 0.0, 0.0, 1.0, order=2))
        g6 = float(influence_function(k, 0.0, 0.0, 1.0, order=6))
        assert abs(g6 * k**2 + 1) < abs(g2 * k**2 + 1)

    def test_zero_mode_zeroed(self):
        assert float(influence_function(0.0, 0.0, 0.0, 1.0)) == 0.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            influence_function(1.0, 0.0, 0.0, 1.0, order=8)


class TestSuperLanczos:
    def test_continuum_limit(self):
        k = 1e-4
        d = complex(super_lanczos_gradient(k, 1.0))
        assert d.imag == pytest.approx(k, rel=1e-6)
        assert d.real == 0.0

    def test_fourth_order_accuracy(self):
        """Error ~ k^5 Delta^4/30: fourth order in k Delta."""
        for k in (0.2, 0.1):
            d = complex(super_lanczos_gradient(k, 1.0)).imag
            err = abs(d - k)
            assert err < k**5 / 20  # leading coefficient 1/30

    def test_second_order_option(self):
        d = complex(super_lanczos_gradient(0.5, 1.0, order=2))
        assert d.imag == pytest.approx(np.sin(0.5), rel=1e-12)

    def test_odd_function(self):
        dp = complex(super_lanczos_gradient(0.7, 1.0))
        dm = complex(super_lanczos_gradient(-0.7, 1.0))
        assert dp == -dm

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            super_lanczos_gradient(1.0, 1.0, order=6)


class TestPoissonSolver:
    def test_plane_wave_potential(self):
        s = SpectralPoissonSolver(32, 1.0, sigma=0.0, ns=0)
        x = np.arange(32) / 32.0
        delta = np.cos(2 * np.pi * x)[:, None, None] * np.ones((1, 32, 32))
        phi = s.potential(delta)
        expected = -np.cos(2 * np.pi * x) / (2 * np.pi) ** 2
        assert np.abs(phi[:, 0, 0] - expected).max() < 1e-6

    def test_plane_wave_force(self):
        s = SpectralPoissonSolver(32, 1.0, sigma=0.0, ns=0)
        x = np.arange(32) / 32.0
        delta = np.cos(2 * np.pi * x)[:, None, None] * np.ones((1, 32, 32))
        fx, fy, fz = s.force_grids(delta)
        expected = -np.sin(2 * np.pi * x) / (2 * np.pi)
        assert np.abs(fx[:, 0, 0] - expected).max() < 1e-5
        assert np.abs(fy).max() < 1e-12
        assert np.abs(fz).max() < 1e-12

    def test_mean_mode_ignored(self):
        s = SpectralPoissonSolver(8, 1.0)
        phi = s.potential(np.full((8, 8, 8), 2.0))
        assert np.abs(phi).max() < 1e-14

    def test_no_self_force(self, rng):
        """A single particle exerts no PM force on itself (CIC adjoint +
        odd gradient kernel)."""
        s = SpectralPoissonSolver(16, 16.0)
        pos = rng.uniform(0, 16.0, (1, 3))
        acc = s.accelerations(pos)
        assert np.abs(acc).max() < 1e-10

    def test_momentum_conservation(self, rng):
        """Total PM force over all particles vanishes."""
        s = SpectralPoissonSolver(16, 16.0)
        pos = rng.uniform(0, 16.0, (100, 3))
        acc = s.accelerations(pos)
        assert np.abs(acc.sum(axis=0)).max() < 1e-9

    def test_pair_force_attractive_and_isotropic(self):
        """Two PM particles attract along their separation vector."""
        s = SpectralPoissonSolver(32, 32.0)
        pos = np.array([[10.0, 16.0, 16.0], [22.0, 16.0, 16.0]])
        acc = s.accelerations(pos)
        assert acc[0, 0] > 0  # particle 0 pulled toward +x
        assert acc[1, 0] < 0
        assert abs(acc[0, 1]) < 1e-3 * abs(acc[0, 0])

    def test_filtered_force_weaker_at_short_range(self):
        """The spectral filter suppresses the PM force at ~cell scales."""
        raw = SpectralPoissonSolver(32, 32.0, sigma=0.0, ns=0)
        filt = SpectralPoissonSolver(32, 32.0)  # nominal sigma=0.8, ns=3
        pos = np.array([[15.0, 16.0, 16.0], [17.0, 16.0, 16.0]])  # 2 cells
        a_raw = raw.accelerations(pos)
        a_filt = filt.accelerations(pos)
        assert abs(a_filt[0, 0]) < abs(a_raw[0, 0])

    def test_distributed_path_matches_local(self, rng):
        s = SpectralPoissonSolver(16, 8.0)
        delta = rng.standard_normal((16, 16, 16))
        delta -= delta.mean()
        local = s.force_grids(delta)
        dist = s.force_grids_distributed(delta, PencilFFT(16, 2, 2))
        for a, b in zip(local, dist):
            assert np.allclose(a, b, atol=1e-12)

    def test_distributed_grid_mismatch_rejected(self, rng):
        s = SpectralPoissonSolver(16, 8.0)
        with pytest.raises(ValueError):
            s.force_grids_distributed(
                np.zeros((16, 16, 16)), PencilFFT(8, 2, 2)
            )

    def test_wrong_shape_rejected(self):
        s = SpectralPoissonSolver(8, 1.0)
        with pytest.raises(ValueError):
            s.potential(np.zeros((4, 4, 4)))

    def test_empty_particles_rejected(self):
        s = SpectralPoissonSolver(8, 1.0)
        with pytest.raises(ValueError):
            s.accelerations(np.zeros((1, 3)), weights=np.zeros(1))
