"""Tests for the pluggable short-range kernel-backend seam.

Covers the registry contract (resolution, auto fallback, loud failure
for unavailable accelerators), the equivalence guarantees the seam
promises — float64 numba results **bitwise identical** to the numpy
reference, float32 within 1e-4 of float64 — and the plumbing that
carries the backend/precision choice through config, solver specs, run
manifests, the ledger and the CLI.

The numba loop bodies are plain Python functions compiled lazily, so
even in environments *without* numba we pin their semantics against the
NumPy backend by monkeypatching the compilation step to return the raw
interpreted implementations.  Where numba is importable, a second class
repeats the checks through the real JIT.
"""

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.core.simulation import HACCSimulation
from repro.grid.cic import ParticleGridCoords, cic_deposit, cic_interpolate
from repro.shortrange.backends import (
    BackendUnavailable,
    KernelBackend,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.shortrange.backends import numba_backend as nb_mod
from repro.shortrange.backends.numba_backend import (
    NumbaBackend,
    _cic_deposit_impl,
    _cic_gather_impl,
    _f_sr_pairs_impl,
    _pair_accumulate_impl,
)
from repro.shortrange.backends.numpy_backend import NumpyBackend
from repro.shortrange.kernel import ShortRangeKernel
from repro.shortrange.solvers import (
    TreePMShortRange,
    build_solver,
    solver_from_spec,
    solver_spec,
)

BOX = 10.0

HAVE_NUMBA = NumbaBackend.available()


@pytest.fixture()
def kernel(grid_force_fit):
    return ShortRangeKernel(grid_force_fit, spacing=1.0, eps_cells=0.01)


@pytest.fixture()
def kernel32(grid_force_fit):
    return ShortRangeKernel(
        grid_force_fit, spacing=1.0, eps_cells=0.01, dtype=np.float32
    )


def clustered_cloud(rng, n):
    centers = rng.uniform(0.0, BOX, (max(n // 50, 2), 3))
    which = rng.integers(0, centers.shape[0], n)
    return np.mod(centers[which] + rng.normal(0.0, 0.2, (n, 3)), BOX)


@pytest.fixture()
def interpreted_numba(monkeypatch):
    """A NumbaBackend whose 'compiled' functions are the raw Python
    loop bodies — semantics of the numba path without requiring numba."""
    fns = {
        "f_sr_pairs": _f_sr_pairs_impl,
        "pair_accumulate": _pair_accumulate_impl,
        "cic_deposit": _cic_deposit_impl,
        "cic_gather": _cic_gather_impl,
    }
    monkeypatch.setattr(nb_mod, "_compiled", lambda fastmath: fns)
    return NumbaBackend()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_backend_names_registered(self):
        assert backend_names() == ("numpy", "numba", "cupy")

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_get_backend_caches_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("fortran")
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_resolve_none_and_auto_pick_cpu_backend(self):
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert resolve_backend(None).name == expected
        assert resolve_backend("auto").name == expected

    def test_resolve_passes_instances_through(self):
        inst = NumpyBackend()
        assert resolve_backend(inst) is inst

    def test_resolve_rejects_non_string_non_backend(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_cupy_unavailable_is_loud(self):
        # explicit requests for a missing accelerator must not degrade
        from repro.shortrange.backends.cupy_backend import CupyBackend

        if CupyBackend.available():
            pytest.skip("cupy with a CUDA device present")
        with pytest.raises(BackendUnavailable):
            get_backend("cupy")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable here")
    def test_numba_unavailable_is_loud(self):
        with pytest.raises(BackendUnavailable):
            get_backend("numba")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable here")
    def test_auto_falls_back_to_numpy_without_numba(self):
        assert "numba" not in available_backends()
        assert resolve_backend("auto").name == "numpy"

    def test_contract_is_abstract(self):
        with pytest.raises(TypeError):
            KernelBackend()


# ----------------------------------------------------------------------
# interpreted-numba equivalence (runs everywhere, numba or not)
# ----------------------------------------------------------------------
class TestInterpretedNumbaEquivalence:
    """The numba loop bodies, run as plain Python, must be *bitwise*
    equal to the NumPy backend in float64 — the strict-IEEE ordering
    contract the compiled f64 variant inherits."""

    def test_f_sr_pairs_bitwise(self, kernel, interpreted_numba, rng):
        s = rng.uniform(1e-3, kernel.fit.rcut_cells**2, 512)
        coeffs = np.ascontiguousarray(
            kernel.fit.coefficients, dtype=np.float64
        )
        eps = np.float64(kernel.eps_cells)
        ref = np.empty_like(s)
        got = np.empty_like(s)
        scratch = np.empty_like(s)
        get_backend("numpy").f_sr_pairs(s, coeffs, eps, ref, scratch)
        interpreted_numba.f_sr_pairs(s, coeffs, eps, got, scratch)
        assert np.array_equal(ref, got)

    def test_treepm_forces_bitwise_f64(self, kernel, interpreted_numba, rng):
        pos = clustered_cloud(rng, 160)
        masses = rng.uniform(0.5, 1.5, 160)
        ref_solver = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numpy"
        )
        nb_solver = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend=interpreted_numba
        )
        ref = ref_solver.accelerations(pos, masses, BOX)
        got = nb_solver.accelerations(pos, masses, BOX)
        assert np.array_equal(ref, got)

    def test_interaction_counts_match(self, kernel, interpreted_numba, rng):
        pos = clustered_cloud(rng, 120)
        ref_solver = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numpy"
        )
        nb_solver = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend=interpreted_numba
        )
        before = kernel.interaction_count
        ref_solver.accelerations(pos, None, BOX)
        ref_pairs = kernel.interaction_count - before
        before = kernel.interaction_count
        nb_solver.accelerations(pos, None, BOX)
        nb_pairs = kernel.interaction_count - before
        assert ref_pairs == nb_pairs > 0

    def test_cic_gather_bitwise(self, interpreted_numba, rng):
        n = 8
        pos = rng.uniform(0.0, BOX, (300, 3))
        grid = rng.normal(size=(n, n, n))
        ref = cic_interpolate(grid, pos, BOX, backend="numpy")
        got = cic_interpolate(grid, pos, BOX, backend=interpreted_numba)
        assert np.array_equal(ref, got)

    def test_cic_deposit_close(self, interpreted_numba, rng):
        # deposit summation order differs between backends (bincount vs
        # serial scatter): tight tolerance, not bitwise
        n = 8
        pos = rng.uniform(0.0, BOX, (300, 3))
        w = rng.uniform(0.5, 1.5, 300)
        ref = cic_deposit(pos, n, BOX, weights=w, backend="numpy")
        got = cic_deposit(pos, n, BOX, weights=w, backend=interpreted_numba)
        np.testing.assert_allclose(got, ref, rtol=1e-13, atol=1e-13)
        assert got.dtype == ref.dtype == np.float64

    def test_f32_tracks_f64(self, kernel, kernel32, interpreted_numba, rng):
        pos = clustered_cloud(rng, 160)
        masses = rng.uniform(0.5, 1.5, 160)
        ref = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numpy"
        ).accelerations(pos, masses, BOX)
        got = TreePMShortRange(
            kernel32, leaf_size=16, kernel_backend=interpreted_numba
        ).accelerations(pos, masses, BOX)
        assert got.dtype == np.float32
        scale = np.abs(ref).max()
        assert np.max(np.abs(got - ref)) < 1e-4 * scale


# ----------------------------------------------------------------------
# compiled-numba equivalence (skipped when numba is absent)
# ----------------------------------------------------------------------
class TestCompiledNumbaEquivalence:
    @pytest.fixture(autouse=True)
    def _need_numba(self):
        pytest.importorskip("numba")

    def test_treepm_forces_bitwise_f64(self, kernel, rng):
        pos = clustered_cloud(rng, 200)
        masses = rng.uniform(0.5, 1.5, 200)
        ref = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numpy"
        ).accelerations(pos, masses, BOX)
        got = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numba"
        ).accelerations(pos, masses, BOX)
        assert np.array_equal(ref, got)

    def test_treepm_forces_f32_within_tolerance(self, kernel, kernel32, rng):
        pos = clustered_cloud(rng, 200)
        masses = rng.uniform(0.5, 1.5, 200)
        ref = TreePMShortRange(
            kernel, leaf_size=16, kernel_backend="numpy"
        ).accelerations(pos, masses, BOX)
        got = TreePMShortRange(
            kernel32, leaf_size=16, kernel_backend="numba"
        ).accelerations(pos, masses, BOX)
        assert got.dtype == np.float32
        scale = np.abs(ref).max()
        assert np.max(np.abs(got - ref)) < 1e-4 * scale

    def test_cic_roundtrip_bitwise_f64(self, rng):
        n = 8
        pos = rng.uniform(0.0, BOX, (400, 3))
        grid = rng.normal(size=(n, n, n))
        ref = cic_interpolate(grid, pos, BOX, backend="numpy")
        got = cic_interpolate(grid, pos, BOX, backend="numba")
        assert np.array_equal(ref, got)

    @pytest.mark.chaos
    def test_chaos_lane_simulation_runs_on_numba(self):
        cfg = SimulationConfig(
            box_size=64.0,
            n_per_dim=8,
            z_initial=25.0,
            z_final=10.0,
            n_steps=2,
            backend="treepm",
            kernel_backend="numba",
            seed=11,
        )
        sim = HACCSimulation(cfg)
        assert sim.kernel_backend == "numba"
        sim.run()
        assert np.all(np.isfinite(sim.particles.positions))


# ----------------------------------------------------------------------
# CIC dtype propagation
# ----------------------------------------------------------------------
class TestCICDtypes:
    def test_coords_follow_requested_dtype(self, rng):
        pos = rng.uniform(0.0, BOX, (50, 3)).astype(np.float32)
        c32 = ParticleGridCoords(pos, 8, BOX, dtype=np.float32)
        assert c32.weights.dtype == np.float32
        c64 = ParticleGridCoords(pos, 8, BOX, dtype=np.float64)
        assert c64.weights.dtype == np.float64

    def test_deposit_dtype_no_silent_upcast(self, rng):
        pos = rng.uniform(0.0, BOX, (200, 3)).astype(np.float32)
        g32 = cic_deposit(pos, 8, BOX, dtype=np.float32)
        assert g32.dtype == np.float32
        # default stays the float64 baseline
        assert cic_deposit(pos, 8, BOX).dtype == np.float64

    def test_interpolate_dtype(self, rng):
        pos = rng.uniform(0.0, BOX, (200, 3))
        grid = rng.normal(size=(8, 8, 8)).astype(np.float32)
        out = cic_interpolate(grid, pos, BOX, dtype=np.float32)
        assert out.dtype == np.float32

    def test_f32_deposit_tracks_f64(self, rng):
        pos = rng.uniform(0.0, BOX, (500, 3))
        w = rng.uniform(0.5, 1.5, 500)
        g64 = cic_deposit(pos, 8, BOX, weights=w)
        g32 = cic_deposit(
            pos.astype(np.float32), 8, BOX,
            weights=w.astype(np.float32), dtype=np.float32,
        )
        np.testing.assert_allclose(g32, g64, rtol=2e-4, atol=2e-4)


# ----------------------------------------------------------------------
# config / spec / manifest / ledger / CLI plumbing
# ----------------------------------------------------------------------
def tiny_config(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=10.0,
        n_steps=2,
        backend="treepm",
        seed=7,
    )
    base.update(kwargs)
    return SimulationConfig(**base)


class TestConfigPlumbing:
    def test_defaults(self):
        cfg = tiny_config()
        assert cfg.kernel_backend == "auto"
        assert cfg.dtype == "f64"
        assert cfg.precision_dtype is np.float64

    def test_precision_dtype_f32(self):
        assert tiny_config(dtype="f32").precision_dtype is np.float32

    def test_validation(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            tiny_config(kernel_backend="quantum")
        with pytest.raises(ValueError, match="dtype"):
            tiny_config(dtype="f16")

    def test_to_dict_and_hash_cover_new_fields(self):
        a = tiny_config()
        b = tiny_config(kernel_backend="numpy")
        c = tiny_config(dtype="f32")
        assert a.to_dict()["kernel_backend"] == "auto"
        assert a.to_dict()["dtype"] == "f64"
        assert a.config_hash() != b.config_hash()
        assert a.config_hash() != c.config_hash()

    def test_simulation_resolves_backend_once(self):
        sim = HACCSimulation(tiny_config(kernel_backend="numpy"))
        assert sim.kernel_backend == "numpy"
        auto = HACCSimulation(tiny_config())
        assert auto.kernel_backend in ("numpy", "numba")

    def test_simulation_casts_particles_to_f32(self):
        sim = HACCSimulation(tiny_config(dtype="f32"))
        assert sim.particles.positions.dtype == np.float32
        assert sim.particles.momenta.dtype == np.float32
        assert sim.particles.masses.dtype == np.float32
        assert sim.particles.ids.dtype == np.int64

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable here")
    def test_explicit_unavailable_backend_fails_at_construction(self):
        with pytest.raises(BackendUnavailable):
            HACCSimulation(tiny_config(kernel_backend="numba"))

    def test_f32_trajectory_tracks_f64(self):
        s64 = HACCSimulation(tiny_config(kernel_backend="numpy"))
        s64.run()
        s32 = HACCSimulation(
            tiny_config(kernel_backend="numpy", dtype="f32")
        )
        s32.run()
        assert s32.particles.positions.dtype == np.float32
        diff = np.abs(
            s32.particles.positions.astype(np.float64)
            - s64.particles.positions
        )
        diff = np.minimum(diff, 64.0 - diff)  # periodic wrap
        assert diff.max() < 1e-4 * 64.0


class TestSolverSpecRoundtrip:
    def test_spec_carries_kernel_backend(self, kernel):
        spec = solver_spec(
            "treepm", kernel, leaf_size=16, kernel_backend="numpy"
        )
        assert spec["kernel_backend"] == "numpy"
        clone = solver_from_spec(spec)
        assert clone.engine.backend.name == "numpy"

    def test_spec_default_backend_is_numpy(self, kernel):
        clone = solver_from_spec(solver_spec("treepm", kernel, leaf_size=16))
        assert clone.engine.backend.name == "numpy"

    def test_spec_is_picklable(self, kernel):
        import pickle

        spec = solver_spec("p3m", kernel, kernel_backend="numpy")
        clone = solver_from_spec(pickle.loads(pickle.dumps(spec)))
        assert clone.engine.backend.name == "numpy"

    def test_build_solver_passes_backend(self, kernel):
        s = build_solver(
            "treepm", kernel, leaf_size=16, kernel_backend="numpy"
        )
        assert s.engine.backend.name == "numpy"


class TestManifestAndLedger:
    def test_manifest_records_backend_and_precision(self):
        from repro.instrument.telemetry import run_manifest

        m = run_manifest(tiny_config(kernel_backend="numpy", dtype="f32"))
        assert m["kernel_backend"] == "numpy"
        assert m["precision"] == "f32"

    def test_manifest_extra_overrides_with_resolved_name(self):
        from repro.instrument.telemetry import run_manifest

        m = run_manifest(
            tiny_config(), extra={"kernel_backend": "numpy"}
        )
        # "auto" from the config replaced by the driver's resolved name
        assert m["kernel_backend"] == "numpy"

    def test_ledger_records_and_filters(self, tmp_path):
        from repro.instrument.store import RunLedger
        from repro.instrument.telemetry import run_manifest

        ledger = RunLedger(tmp_path / "ledger")
        m32 = run_manifest(tiny_config(kernel_backend="numpy", dtype="f32"))
        m64 = run_manifest(tiny_config(kernel_backend="numpy", dtype="f64"))
        e32 = ledger.record(manifest=m32)
        ledger.record(manifest=m64)
        assert e32.kernel_backend == "numpy"
        assert e32.precision == "f32"
        only32 = ledger.query(precision="f32")
        assert [e.run_id for e in only32] == [e32.run_id]
        assert len(ledger.query(kernel_backend="numpy")) == 2
        assert ledger.query(kernel_backend="cupy") == []

    def test_entry_roundtrips_through_json(self, tmp_path):
        from repro.instrument.store import RunEntry, RunLedger
        from repro.instrument.telemetry import run_manifest

        ledger = RunLedger(tmp_path / "ledger")
        ledger.record(
            manifest=run_manifest(tiny_config(dtype="f32"))
        )
        line = (tmp_path / "ledger" / "index.jsonl").read_text().strip()
        entry = RunEntry.from_dict(json.loads(line))
        assert entry.precision == "f32"


class TestCLI:
    def test_run_options_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["run", "--kernel-backend", "numpy", "--precision", "f32"]
        )
        assert args.kernel_backend == "numpy"
        assert args.precision == "f32"

    def test_run_options_default(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["run"])
        assert args.kernel_backend == "auto"
        assert args.precision == "f64"

    def test_run_rejects_unknown_backend(self, capsys):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernel-backend", "mlx"])

    def test_runs_filters_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["runs", "--kernel-backend", "numba", "--precision", "f32"]
        )
        assert args.kernel_backend == "numba"
        assert args.precision == "f32"
