"""Tests for density diagnostics and snapshot I/O."""

import numpy as np
import pytest

from repro.analysis.density import (
    density_contrast_statistics,
    density_projection,
    zoom_series,
)
from repro.core.particles import Particles
from repro.io.snapshots import (
    load_power_history,
    load_snapshot,
    save_power_history,
    save_snapshot,
)
from repro.analysis.power import matter_power_spectrum


class TestProjection:
    def test_uniform_particles_give_flat_map(self, rng):
        pos = rng.uniform(0, 10.0, (100000, 3))
        m = density_projection(pos, 10.0, 8)
        assert m.shape == (8, 8)
        assert m.mean() == pytest.approx(1.0)
        assert m.std() < 0.1

    def test_point_mass_lands_in_one_pixel(self):
        pos = np.array([[1.25, 3.75, 5.0]])
        m = density_projection(pos, 10.0, 4, axis=2)
        assert m[0, 1] > 0
        assert np.count_nonzero(m) == 1

    def test_axis_selection(self):
        pos = np.array([[1.0, 5.0, 9.0]])
        m0 = density_projection(pos, 10.0, 4, axis=0)  # keeps (y, z)
        assert m0[2, 3] > 0

    def test_slab_selection(self, rng):
        pos = rng.uniform(0, 10.0, (1000, 3))
        full = density_projection(pos, 10.0, 4)
        slab = density_projection(pos, 10.0, 4, depth=(0.0, 1.0))
        assert not np.allclose(full, slab)

    def test_weights(self):
        pos = np.array([[1.0, 1.0, 1.0], [6.0, 6.0, 6.0]])
        m = density_projection(pos, 10.0, 2, weights=np.array([3.0, 1.0]))
        assert m[0, 0] == pytest.approx(3 * m[1, 1])

    @pytest.mark.parametrize("kwargs", [dict(axis=3), dict(depth=(5.0, 2.0))])
    def test_validation(self, rng, kwargs):
        with pytest.raises(ValueError):
            density_projection(rng.uniform(0, 1, (5, 3)), 1.0, 4, **kwargs)


class TestContrastStats:
    def test_uniform_lattice(self):
        g = np.arange(4) * 2.5
        pos = np.stack(np.meshgrid(g, g, g, indexing="ij"), -1).reshape(-1, 3)
        st = density_contrast_statistics(pos, 10.0, 4)
        assert st.max_contrast == pytest.approx(0.0, abs=1e-12)
        assert st.variance == pytest.approx(0.0, abs=1e-12)

    def test_clustered_has_high_contrast(self, rng):
        pos = np.mod(
            np.array([5.0, 5.0, 5.0]) + 0.1 * rng.standard_normal((1000, 3)),
            10.0,
        )
        st = density_contrast_statistics(pos, 10.0, 8)
        assert st.max_contrast > 50
        assert st.min_contrast == pytest.approx(-1.0)
        assert st.fraction_empty > 0.9


class TestZoomSeries:
    def test_nested_levels(self, rng):
        pos = rng.uniform(0, 100.0, (5000, 3))
        levels = zoom_series(
            pos, 100.0, np.array([50.0, 50.0, 50.0]), [100.0, 50.0, 10.0], n=16
        )
        assert [l.size for l in levels] == [100.0, 50.0, 10.0]
        counts = [l.n_particles for l in levels]
        assert counts[0] == 5000
        assert counts[0] > counts[1] > counts[2]

    def test_dynamic_range_ladder(self, rng):
        """The ratio of outer to inner zoom is the realized dynamic range
        — the Fig. 2 construction."""
        pos = rng.uniform(0, 100.0, (1000, 3))
        levels = zoom_series(
            pos, 100.0, np.array([50, 50, 50.0]), [100.0, 1.0], n=8
        )
        assert levels[0].size / levels[-1].size == pytest.approx(100.0)

    def test_zoom_across_periodic_seam(self, rng):
        pos = np.mod(0.5 * rng.standard_normal((500, 3)), 100.0)
        levels = zoom_series(
            pos, 100.0, np.array([0.0, 0.0, 0.0]), [4.0], n=8
        )
        assert levels[0].n_particles == 500

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            zoom_series(
                rng.uniform(0, 1, (10, 3)), 1.0, np.zeros(3), [2.0]
            )


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path, rng):
        p = Particles.uniform_random(50, 10.0, seed=1)
        p.momenta[:] = rng.standard_normal((50, 3))
        path = save_snapshot(tmp_path / "snap", p, a=0.5, metadata={"z": 1.0})
        q, a, meta = load_snapshot(path)
        assert a == 0.5
        assert meta["z"] == 1.0
        assert np.array_equal(q.positions, p.positions)
        assert np.array_equal(q.momenta, p.momenta)
        assert q.box_size == 10.0

    def test_subsample(self, tmp_path):
        p = Particles.uniform_random(100, 10.0)
        path = save_snapshot(tmp_path / "s", p, a=1.0, subsample=4)
        q, _, _ = load_snapshot(path)
        assert q.n == 25
        assert np.array_equal(q.ids, p.ids[::4])

    def test_validation(self, tmp_path):
        p = Particles.uniform_random(10, 10.0)
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "s", p, a=0.0)
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "s", p, a=1.0, subsample=0)

    def test_power_history_roundtrip(self, tmp_path, rng):
        pos = rng.uniform(0, 10.0, (500, 3))
        ps1 = matter_power_spectrum(pos, 10.0, 8)
        ps2 = matter_power_spectrum(pos, 10.0, 16)
        path = save_power_history(
            tmp_path / "hist", [5.0, 0.0], [ps1, ps2], metadata={"run": "x"}
        )
        z, records = load_power_history(path)
        assert np.array_equal(z, [5.0, 0.0])
        assert np.array_equal(records[0]["k"], ps1.k)
        assert np.array_equal(records[1]["power"], ps2.power)

    def test_power_history_length_mismatch(self, tmp_path, rng):
        pos = rng.uniform(0, 10.0, (100, 3))
        ps = matter_power_spectrum(pos, 10.0, 8)
        with pytest.raises(ValueError):
            save_power_history(tmp_path / "h", [1.0, 2.0], [ps])
