"""Tests for the SKS sub-cycled symplectic stepper."""

import numpy as np
import pytest

from repro.core.particles import Particles
from repro.core.timestepper import (
    SubcycledStepper,
    drift_coefficient,
    kick_coefficient,
)
from repro.cosmology.background import WMAP7, Cosmology

EDS = Cosmology(omega_m=1.0, omega_b=0.05)


class TestCoefficients:
    def test_drift_eds_closed_form(self):
        # EdS: E = a^{-3/2}; int da a^{-3} a^{3/2} = int a^{-3/2} da
        a0, a1 = 0.25, 1.0
        expected = -2.0 * (a1**-0.5 - a0**-0.5)
        assert drift_coefficient(EDS, a0, a1) == pytest.approx(
            expected, rel=1e-8
        )

    def test_kick_eds_closed_form(self):
        # int da a^{-2} a^{3/2} = int a^{-1/2} da = 2(sqrt(a1)-sqrt(a0))
        a0, a1 = 0.25, 1.0
        expected = 2.0 * (np.sqrt(a1) - np.sqrt(a0))
        assert kick_coefficient(EDS, a0, a1) == pytest.approx(
            expected, rel=1e-8
        )

    def test_zero_interval(self):
        assert drift_coefficient(WMAP7, 0.5, 0.5) == 0.0
        assert kick_coefficient(WMAP7, 0.5, 0.5) == 0.0

    def test_additivity(self):
        whole = drift_coefficient(WMAP7, 0.2, 0.8)
        split = drift_coefficient(WMAP7, 0.2, 0.5) + drift_coefficient(
            WMAP7, 0.5, 0.8
        )
        assert whole == pytest.approx(split, rel=1e-9)

    def test_positive_for_forward_interval(self):
        assert drift_coefficient(WMAP7, 0.1, 0.9) > 0
        assert kick_coefficient(WMAP7, 0.1, 0.9) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            drift_coefficient(WMAP7, 0.0, 0.5)
        with pytest.raises(ValueError):
            kick_coefficient(WMAP7, -0.1, 0.5)


def free_particles(n=8, box=100.0):
    p = Particles.uniform_random(n, box, seed=3)
    p.momenta[:] = np.random.default_rng(4).standard_normal((n, 3))
    return p


class TestStepperMaps:
    def test_stream_is_straight_line(self):
        p = free_particles()
        ref = p.positions.copy()
        st = SubcycledStepper(WMAP7, lambda x: np.zeros_like(x), None)
        st.stream(p, 0.5, 0.6)
        d = drift_coefficient(WMAP7, 0.5, 0.6)
        expected = np.mod(ref + p.momenta * d, 100.0)
        assert np.allclose(p.positions, expected)

    def test_kick_updates_momenta_only(self):
        p = free_particles()
        ref_pos = p.positions.copy()
        acc = np.full((8, 3), 2.0)
        st = SubcycledStepper(WMAP7, lambda x: acc, None)
        st.kick_long(p, 0.5, 0.6)
        assert np.array_equal(p.positions, ref_pos)
        k = kick_coefficient(WMAP7, 0.5, 0.6)
        assert np.allclose(p.momenta - 2.0 * k, free_particles().momenta)

    def test_free_particle_constant_velocity(self):
        """With zero force the full step is exactly ballistic."""
        p = free_particles()
        ref = p.copy()
        st = SubcycledStepper(
            WMAP7, lambda x: np.zeros_like(x), lambda x: np.zeros_like(x), 5
        )
        st.step(p, 0.5, 0.7)
        d = drift_coefficient(WMAP7, 0.5, 0.7)
        assert np.allclose(
            p.positions, np.mod(ref.positions + ref.momenta * d, 100.0)
        )
        assert np.allclose(p.momenta, ref.momenta)

    def test_subcycle_counters(self):
        p = free_particles()
        st = SubcycledStepper(
            WMAP7, lambda x: np.zeros_like(x), lambda x: np.zeros_like(x), 4
        )
        st.step(p, 0.5, 0.6)
        assert st.n_long_range_evals == 2  # half kick at each end
        assert st.n_short_range_evals == 4
        assert st.n_substeps == 4

    def test_pm_only_mode_skips_short_range(self):
        p = free_particles()
        st = SubcycledStepper(WMAP7, lambda x: np.zeros_like(x), None, 5)
        st.step(p, 0.5, 0.6)
        assert st.n_short_range_evals == 0

    def test_invalid_interval(self):
        st = SubcycledStepper(WMAP7, lambda x: np.zeros_like(x), None)
        with pytest.raises(ValueError):
            st.step(free_particles(), 0.6, 0.5)

    def test_invalid_subcycles(self):
        with pytest.raises(ValueError):
            SubcycledStepper(WMAP7, lambda x: x, None, 0)


class TestSymplecticProperties:
    def _harmonic_stepper(self, nc=1):
        """Central force toward the box center (non-periodic test setup)."""

        def force(pos):
            return -(pos - 50.0)

        return SubcycledStepper(EDS, force, None, n_subcycles=nc)

    def test_second_order_convergence(self):
        """Halving the step cuts the error ~4x (2nd-order scheme)."""

        def run(n_steps):
            p = Particles(
                positions=np.array([[60.0, 50.0, 50.0]]),
                momenta=np.zeros((1, 3)),
                masses=np.ones(1),
                ids=np.arange(1),
                box_size=100.0,
            )
            st = self._harmonic_stepper()
            edges = np.linspace(0.5, 0.9, n_steps + 1)
            for a0, a1 in zip(edges[:-1], edges[1:]):
                st.step(p, a0, a1)
            return p.positions[0, 0]

        ref = run(64)
        e4 = abs(run(4) - ref)
        e8 = abs(run(8) - ref)
        assert e4 / e8 == pytest.approx(4.0, rel=0.35)

    def test_reversibility(self):
        """Applying the inverse maps in reverse order restores the state.

        The kick/stream coefficients are oriented integrals, so swapping
        the interval endpoints negates them; undoing the SKS composition
        is then just replaying its maps backwards."""
        rng = np.random.default_rng(5)
        pos0 = rng.uniform(20, 80, (20, 3))
        mom0 = rng.standard_normal((20, 3))
        p = Particles(
            pos0.copy(), mom0.copy(), np.ones(20), np.arange(20), 100.0
        )

        def force(pos):
            return -(pos - 50.0)

        nc = 3
        a0, a1 = 0.5, 0.6
        st = SubcycledStepper(EDS, force, force, n_subcycles=nc)
        st.step(p, a0, a1)

        a_mid = 0.5 * (a0 + a1)
        edges = np.linspace(a0, a1, nc + 1)
        st.kick_long(p, a1, a_mid)  # reversed endpoints -> inverse kick
        for b0, b1 in zip(edges[:-1][::-1], edges[1:][::-1]):
            b_mid = 0.5 * (b0 + b1)
            st.stream(p, b1, b_mid)
            st.kick_short(p, b1, b0)
            st.stream(p, b_mid, b0)
        st.kick_long(p, a_mid, a0)

        assert np.allclose(p.positions, pos0, atol=1e-9)
        assert np.allclose(p.momenta, mom0, atol=1e-9)
