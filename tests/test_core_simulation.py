"""Tests for the HACCSimulation driver (wiring, not physics accuracy —
the physics lives in the integration tests)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.core.simulation import HACCSimulation


def small_config(**kwargs):
    base = dict(
        box_size=64.0,
        n_per_dim=8,
        z_initial=25.0,
        z_final=10.0,
        n_steps=2,
        backend="pm",
        seed=5,
    )
    base.update(kwargs)
    return SimulationConfig(**base)


class TestSetup:
    def test_generates_ics_by_default(self):
        sim = HACCSimulation(small_config())
        assert sim.particles.n == 512
        assert sim.a == pytest.approx(1 / 26)

    def test_accepts_prebuilt_particles(self):
        p = Particles.uniform_random(100, 64.0, seed=1)
        sim = HACCSimulation(small_config(), particles=p)
        assert sim.particles is p

    def test_box_mismatch_rejected(self):
        p = Particles.uniform_random(10, 32.0)
        with pytest.raises(ValueError):
            HACCSimulation(small_config(), particles=p)

    def test_pm_backend_has_no_kernel(self):
        sim = HACCSimulation(small_config(backend="pm"))
        assert sim.kernel is None
        assert sim.short_solver is None

    @pytest.mark.parametrize("backend", ["treepm", "p3m", "direct"])
    def test_short_range_backends_constructed(self, backend):
        sim = HACCSimulation(small_config(backend=backend, n_per_dim=8))
        assert sim.short_solver is not None
        assert sim.kernel.rcut == pytest.approx(3 * 64.0 / 8)

    def test_prefactor(self):
        sim = HACCSimulation(small_config())
        assert sim.prefactor == pytest.approx(1.5 * 0.265)


class TestEvolution:
    def test_run_reaches_final_redshift(self):
        sim = HACCSimulation(small_config())
        sim.run()
        assert sim.a == pytest.approx(1 / 11)
        assert sim.redshift == pytest.approx(10.0, rel=1e-10)

    def test_step_beyond_end_raises(self):
        sim = HACCSimulation(small_config(n_steps=1))
        sim.step()
        with pytest.raises(RuntimeError):
            sim.step()

    def test_callback_invoked_per_step(self):
        sim = HACCSimulation(small_config(n_steps=3))
        seen = []
        sim.run(callback=lambda s: seen.append(s.a))
        assert len(seen) == 3
        assert seen[-1] == pytest.approx(sim.a)

    def test_structure_grows(self):
        """Density variance increases monotonically during evolution."""
        sim = HACCSimulation(
            small_config(n_per_dim=16, z_final=3.0, n_steps=6)
        )
        v0 = sim.density_contrast().var()
        sim.run()
        v1 = sim.density_contrast().var()
        assert v1 > 2.0 * v0

    def test_timings_populated(self):
        sim = HACCSimulation(small_config())
        sim.run()
        assert sim.timings["long_range"] > 0

    def test_interaction_count_pm_zero(self):
        sim = HACCSimulation(small_config())
        sim.run()
        assert sim.interaction_count() == 0

    def test_interaction_count_treepm_positive(self):
        sim = HACCSimulation(
            small_config(backend="treepm", n_per_dim=8, n_steps=1)
        )
        sim.run()
        assert sim.interaction_count() > 0

    def test_deterministic_given_seed(self):
        a = HACCSimulation(small_config())
        b = HACCSimulation(small_config())
        a.run()
        b.run()
        assert np.array_equal(a.particles.positions, b.particles.positions)

    def test_seed_changes_evolution(self):
        a = HACCSimulation(small_config(seed=1))
        b = HACCSimulation(small_config(seed=2))
        a.run()
        b.run()
        assert not np.allclose(a.particles.positions, b.particles.positions)


class TestOverloadedShortRange:
    def test_matches_single_rank_path(self):
        """Rank-local forces over overloaded domains equal the global
        periodic-ghost evaluation — the paper's 'essentially exact'
        overloading claim."""
        cfg = small_config(backend="treepm", n_per_dim=16, box_size=64.0)
        single = HACCSimulation(cfg)
        multi = HACCSimulation(
            cfg,
            decomposition_dims=(2, 1, 1),
            overload_depth=cfg.rcut() + 0.5,
        )
        pos = single.particles.positions
        a1 = single._short_range(pos)
        a2 = multi._short_range(pos)
        assert np.allclose(a1, a2, atol=1e-10)

    def test_overload_refresh_traffic_recorded(self):
        cfg = small_config(backend="treepm", n_per_dim=16)
        sim = HACCSimulation(
            cfg,
            decomposition_dims=(2, 1, 1),
            overload_depth=cfg.rcut() + 0.5,
        )
        sim._short_range(sim.particles.positions)
        assert sim.exchange.comm.stats.tag_bytes("overload.distribute") > 0

    def test_full_run_with_overloading(self):
        cfg = small_config(backend="p3m", n_per_dim=16, n_steps=1)
        sim = HACCSimulation(
            cfg,
            decomposition_dims=(2, 1, 1),
            overload_depth=cfg.rcut() + 0.5,
        )
        sim.run()
        assert sim.a == pytest.approx(1 / 11)
