"""Tests for the BG/Q machine and performance models.

These tests pin the models to the facts printed in the paper: hardware
constants (Section III), the kernel instruction analysis, and the
tolerance with which the calibrated models regenerate Tables I-III.
"""

import numpy as np
import pytest

from repro.machine.architectures import ARCHITECTURES
from repro.machine.bgq import BGQNode, BGQSystem
from repro.machine.fft_model import DistributedFFTModel
from repro.machine.kernel_model import FIG5_CONFIGS, ForceKernelModel
from repro.machine.network import TorusNetworkModel
from repro.machine.paper_data import TABLE2, TABLE3
from repro.machine.perfmodel import FullCodeModel


class TestBGQNode:
    def test_peak_per_core(self):
        # 1.6 GHz x 4-wide x 2 flops = 12.8 GFlops (Section III)
        assert BGQNode().flops_per_core_peak == pytest.approx(12.8e9)

    def test_peak_per_node(self):
        assert BGQNode().flops_per_node_peak == pytest.approx(204.8e9)

    def test_link_bandwidth(self):
        # 10 links, 40 GB/s total
        assert BGQNode().link_bandwidth_bytes == pytest.approx(4.0e9)

    def test_rank_peak(self):
        assert BGQNode().flops_per_rank_peak(16) == pytest.approx(12.8e9)

    def test_rank_peak_validation(self):
        with pytest.raises(ValueError):
            BGQNode().flops_per_rank_peak(0)


class TestBGQSystem:
    def test_sequoia_is_96_racks(self):
        seq = BGQSystem.racks(96)
        assert seq.cores == 1_572_864
        assert seq.peak_pflops == pytest.approx(20.13, rel=0.01)

    def test_headline_peak_fraction(self):
        """13.94 PFlops on Sequoia is 69.2% of peak."""
        seq = BGQSystem.racks(96)
        assert 13.94 / seq.peak_pflops == pytest.approx(0.692, abs=0.002)

    def test_mira_is_48_racks(self):
        assert BGQSystem.racks(48).cores == 786_432

    def test_for_ranks(self):
        sys = BGQSystem.for_ranks(8192, ranks_per_node=8)
        assert sys.n_nodes == 1024  # one rack

    def test_torus(self):
        t = BGQSystem.racks(1).torus()
        assert t.n_nodes == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            BGQSystem(0)
        with pytest.raises(ValueError):
            BGQSystem.racks(0)


class TestKernelModel:
    def test_arithmetic_ceiling_is_81_percent(self):
        """168 of 208 possible flops: 'a theoretical maximum value of
        168/208 = 0.81'."""
        assert ForceKernelModel().arithmetic_ceiling == pytest.approx(
            168.0 / 208.0
        )

    def test_four_threads_hide_latency(self):
        m = ForceKernelModel()
        assert m.issue_utilization(4) == 1.0
        assert m.issue_utilization(2) == pytest.approx(4 / 6)
        assert m.issue_utilization(1) == pytest.approx(2 / 6)

    def test_fig5_shape_best_config(self):
        """16 ranks x 4 threads approaches 80% of peak at large lists."""
        m = ForceKernelModel()
        frac = float(m.peak_fraction(5000.0, 16, 4))
        assert 0.75 < frac < 0.81

    def test_fig5_typical_range(self):
        """At typical list sizes (500-2500) the 4-thread curves sit in
        the 60-78% band of Fig. 5."""
        m = ForceKernelModel()
        for n in (500, 1500, 2500):
            frac = float(m.peak_fraction(n, 16, 4))
            assert 0.55 < frac < 0.80

    def test_one_thread_per_core_much_slower(self):
        m = ForceKernelModel()
        fast = float(m.peak_fraction(2000.0, 16, 4))
        slow = float(m.peak_fraction(2000.0, 16, 1))
        assert slow < 0.5 * fast

    def test_two_ranks_slightly_below_sixteen(self):
        """'Note the exceptional performance even at 2 ranks per node' —
        close to, but below, the 16-rank curve."""
        m = ForceKernelModel()
        r16 = float(m.peak_fraction(2000.0, 16, 4))
        r2 = float(m.peak_fraction(2000.0, 2, 32))
        assert r2 < r16
        assert r2 > 0.9 * r16

    def test_monotone_in_list_size(self):
        m = ForceKernelModel()
        n = np.array([32, 100, 500, 2000, 5000])
        curve = m.peak_fraction(n, 16, 4)
        assert np.all(np.diff(curve) > 0)

    def test_all_fig5_configs_valid(self):
        m = ForceKernelModel()
        curves = m.fig5_curves(np.array([500.0, 2500.0]))
        assert set(curves) == set(FIG5_CONFIGS)
        for v in curves.values():
            assert np.all(v > 0)
            assert np.all(v < 81.0)

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            ForceKernelModel().peak_fraction(100.0, 16, 8)  # 128 > 64 threads

    def test_cycles_per_interaction_floor(self):
        """At the ceiling, 21 flops/interaction / 8 flops/cycle ~ 2.6
        cycles; overheads only increase it."""
        m = ForceKernelModel()
        c = float(m.cycles_per_interaction(5000.0, 16, 4))
        assert c > 21.0 / 8.0


class TestNetworkModel:
    def test_alltoall_scales(self):
        net = TorusNetworkModel(64)
        assert net.alltoall_time(2e9) > net.alltoall_time(1e9)

    def test_bigger_partition_more_bisection(self):
        small = TorusNetworkModel(64)
        big = TorusNetworkModel(4096)
        # same total bytes: the big machine has more links
        assert big.alltoall_time(1e10) < small.alltoall_time(1e10)

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusNetworkModel(0)
        with pytest.raises(ValueError):
            TorusNetworkModel(4, efficiency=0.0)
        with pytest.raises(ValueError):
            TorusNetworkModel(4).alltoall_time(-1)


class TestFFTModel:
    @pytest.fixture(scope="class")
    def model(self):
        return DistributedFFTModel.calibrated()

    def test_table1_reproduced_within_tolerance(self, model):
        """Every Table I row within 40%, mean within 20%."""
        rows = model.table1()
        ratios = np.array([r["ratio"] for r in rows])
        assert np.all(np.abs(ratios - 1) < 0.40)
        assert np.mean(np.abs(ratios - 1)) < 0.20

    def test_strong_scaling_near_ideal(self, model):
        """1024^3: 256 -> 8192 ranks speeds up ~25-32x (ideal 32x)."""
        speedup = model.time(1024, 256) / model.time(1024, 8192)
        assert 15 < speedup <= 33

    def test_weak_scaling_flat(self, model):
        """~160^3 per rank: time varies by <2x from 16k to 131k ranks."""
        times = [model.time(4096, 16384), model.time(8192, 131072)]
        assert max(times) / min(times) < 2.0

    def test_heavier_loading_slower(self, model):
        assert model.time(5120, 16384) > model.time(4096, 16384)

    def test_fft_flops(self):
        assert DistributedFFTModel.fft_flops(1024) == pytest.approx(
            5 * 1024**3 * 30
        )

    def test_poisson_time_per_particle_positive(self, model):
        t = model.poisson_time_per_particle(4096, 2e6)
        assert 0 < t < 1e-6

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.time(1, 4)
        with pytest.raises(ValueError):
            model.time(64, 0)
        with pytest.raises(ValueError):
            model.poisson_time_per_particle(64, 0)


class TestArchitectures:
    def test_three_machines(self):
        assert set(ARCHITECTURES) == {"bgq", "bgp", "roadrunner"}

    def test_slab_rank_limit(self):
        rr = ARCHITECTURES["roadrunner"]
        assert rr.rank_limit(1024) == 1024

    def test_pencil_rank_limit(self):
        assert ARCHITECTURES["bgq"].rank_limit(1024) == 1024**2

    def test_bgq_fastest_per_particle(self):
        """Fig. 6 ordering: the BG/Q pencil solver has the lowest time
        per step per particle."""
        times = {}
        for key, arch in ARCHITECTURES.items():
            m = arch.fft_model()
            times[key] = m.poisson_time_per_particle(1024, 2e6)
        assert times["bgq"] < times["bgp"]
        assert times["bgq"] < times["roadrunner"]


class TestFullCodeModel:
    @pytest.fixture(scope="class")
    def model(self):
        return FullCodeModel.calibrated()

    def test_headline_pflops(self, model):
        """13.94 PFlops at 69.2% of peak on 1,572,864 cores."""
        h = model.headline()
        assert h["model_pflops"] == pytest.approx(13.94, rel=0.02)
        assert h["model_peak_percent"] == pytest.approx(69.2, abs=1.0)

    def test_headline_push_time(self, model):
        """~0.06 ns per substep per particle on the 96-rack run."""
        h = model.headline()
        assert h["model_time_substep_particle"] == pytest.approx(
            5.96e-11, rel=0.25
        )

    def test_table2_time_column(self, model):
        """Cores x time/substep within 20% of every published row."""
        for d in model.table2():
            p, q = d["paper"], d["model"]
            assert q.cores_time_substep == pytest.approx(
                p.cores_time_substep, rel=0.20
            )

    def test_table2_weak_scaling_flat(self, model):
        """The model reproduces the paper's near-perfect weak scaling:
        time/substep/particle halves when cores double."""
        rows = [d["model"] for d in model.table2()]
        for a, b in zip(rows[:-1], rows[1:]):
            ratio = (
                a.time_substep_particle / b.time_substep_particle
            ) / (b.cores / a.cores)
            assert ratio == pytest.approx(1.0, abs=0.15)

    def test_table2_memory_column(self, model):
        """Memory per rank within 15% of every published row (346-418 MB)."""
        for d in model.table2():
            p, q = d["paper"], d["model"]
            assert q.memory_mb_rank == pytest.approx(
                p.memory_mb_rank, rel=0.15
            )

    def test_table2_peak_percent(self, model):
        for d in model.table2():
            p, q = d["paper"], d["model"]
            assert q.peak_percent == pytest.approx(p.peak_percent, abs=3.0)

    def test_table3_degradation_ratio(self, model):
        """Strong-scaling 'abuse': cores x time/substep/particle grows
        ~2.2x from 512 to 16384 cores (overloading overhead)."""
        rows = model.table3()
        first = rows[0]["model"]
        last = rows[-1]["model"]
        model_ratio = (
            last.time_substep_particle * last.cores
        ) / (first.time_substep_particle * first.cores)
        paper_ratio = (9.33e-9 * 16384) / (1.36e-7 * 512)
        assert model_ratio == pytest.approx(paper_ratio, rel=0.20)

    def test_table3_time_column(self, model):
        for d in model.table3():
            p, q = d["paper"], d["model"]
            assert q.time_substep_particle == pytest.approx(
                p.time_substep_particle, rel=0.45
            )

    def test_table3_memory_column(self, model):
        for d in model.table3():
            p, q = d["paper"], d["model"]
            assert q.memory_mb_rank == pytest.approx(
                p.memory_mb_rank, rel=0.30
            )

    def test_table3_peak_declines(self, model):
        peaks = [d["model"].peak_percent for d in model.table3()]
        assert peaks[-1] < peaks[0]

    def test_overload_factor_production_value(self, model):
        """Weak-scaling rows have overload memory overhead of tens of
        percent at the effective depth (the paper quotes ~10% for pure
        replication at production geometries; the calibrated effective
        depth also absorbs tree/edge overheads)."""
        for d in model.table2():
            assert 1.2 < d["model"].overload_factor < 2.0

    def test_predict_validation(self, model):
        with pytest.raises(ValueError):
            model.predict(cores=0, np_per_dim=1024, box_mpc=1000.0)
