"""Tests for SimulationConfig and the SOA particle container."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.particles import Particles
from repro.cosmology import WMAP7, make_initial_conditions


class TestSimulationConfig:
    def test_defaults(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=16)
        assert cfg.grid() == 16
        assert cfg.n_particles == 4096
        assert cfg.backend == "treepm"
        assert cfg.a_initial == pytest.approx(1 / 26)
        assert cfg.a_final == 1.0

    def test_explicit_grid(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=16, grid_size=32)
        assert cfg.grid() == 32
        assert cfg.spacing() == pytest.approx(100.0 / 32)

    def test_rcut(self):
        cfg = SimulationConfig(box_size=96.0, n_per_dim=32)
        assert cfg.rcut() == pytest.approx(3.0 * 3.0)

    def test_step_edges_linear(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=16, n_steps=4)
        edges = cfg.step_edges()
        assert len(edges) == 5
        assert edges[0] == pytest.approx(cfg.a_initial)
        assert edges[-1] == pytest.approx(1.0)
        assert np.allclose(np.diff(edges), np.diff(edges)[0])

    def test_step_edges_log(self):
        cfg = SimulationConfig(
            box_size=100.0, n_per_dim=16, n_steps=4, step_spacing="loga"
        )
        edges = cfg.step_edges()
        ratios = edges[1:] / edges[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_with_copies(self):
        cfg = SimulationConfig(box_size=100.0, n_per_dim=16)
        cfg2 = cfg.with_(n_steps=7)
        assert cfg2.n_steps == 7
        assert cfg.n_steps != 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(box_size=0.0),
            dict(n_per_dim=1),
            dict(z_initial=1.0, z_final=2.0),
            dict(z_final=-0.5),
            dict(n_steps=0),
            dict(n_subcycles=0),
            dict(backend="gadget"),
            dict(step_spacing="t"),
            dict(rcut_cells=0.0),
            dict(lpt_order=3),
            dict(n_per_dim=4),  # rcut 3/4 of box: too large
        ],
    )
    def test_validation(self, kwargs):
        base = dict(box_size=100.0, n_per_dim=16)
        with pytest.raises(ValueError):
            SimulationConfig(**{**base, **kwargs})


class TestParticles:
    def test_from_ics(self):
        ics = make_initial_conditions(
            WMAP7, n_per_dim=4, box_size=10.0, z_init=25.0
        )
        p = Particles.from_ics(ics)
        assert p.n == 64
        assert np.all(p.masses == 1.0)
        assert np.array_equal(p.ids, np.arange(64))

    def test_uniform_random_reproducible(self):
        a = Particles.uniform_random(10, 5.0, seed=1)
        b = Particles.uniform_random(10, 5.0, seed=1)
        assert np.array_equal(a.positions, b.positions)

    def test_wrap(self):
        p = Particles.uniform_random(5, 10.0, seed=0)
        p.positions[0] = [12.0, -3.0, 5.0]
        p.wrap()
        assert np.allclose(p.positions[0], [2.0, 7.0, 5.0])

    def test_kinetic_energy_scaling(self):
        p = Particles.uniform_random(10, 5.0, seed=0)
        p.momenta[:] = 1.0
        # v = p/a: KE at a=0.5 is 4x KE at a=1
        assert p.kinetic_energy(0.5) == pytest.approx(4 * p.kinetic_energy(1.0))

    def test_kinetic_energy_validates_a(self):
        p = Particles.uniform_random(2, 5.0)
        with pytest.raises(ValueError):
            p.kinetic_energy(0.0)

    def test_rms_displacement_periodic(self):
        p = Particles.uniform_random(3, 10.0, seed=0)
        ref = p.positions.copy()
        p.positions[:] = np.mod(ref + 9.5, 10.0)  # -0.5 shift periodically
        d = p.rms_displacement(ref)
        assert d == pytest.approx(np.sqrt(3 * 0.25), rel=1e-9)

    def test_copy_is_deep(self):
        p = Particles.uniform_random(4, 5.0)
        q = p.copy()
        q.positions[0, 0] = 99.0
        assert p.positions[0, 0] != 99.0

    @pytest.mark.parametrize(
        "field,shape",
        [
            ("positions", (3, 2)),
            ("momenta", (4, 3)),
            ("masses", (4,)),
            ("ids", (5,)),
        ],
    )
    def test_shape_validation(self, field, shape):
        good = dict(
            positions=np.zeros((3, 3)),
            momenta=np.zeros((3, 3)),
            masses=np.ones(3),
            ids=np.arange(3),
            box_size=1.0,
        )
        good[field] = np.zeros(shape)
        if field == "positions":
            with pytest.raises(ValueError):
                Particles(**good)
        else:
            with pytest.raises(ValueError):
                Particles(**good)
